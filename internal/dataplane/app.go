package dataplane

import (
	"fmt"
	"strconv"
	"time"

	"github.com/seed5g/seed/internal/android"
	"github.com/seed5g/seed/internal/nas"
	"github.com/seed5g/seed/internal/radio"
	"github.com/seed5g/seed/internal/report"
	"github.com/seed5g/seed/internal/sched"
)

// AppKind enumerates the five §7.1.2 application profiles.
type AppKind uint8

const (
	Video AppKind = iota + 1
	LiveStream
	Web
	Navigation
	EdgeAR
)

func (k AppKind) String() string {
	switch k {
	case Video:
		return "video"
	case LiveStream:
		return "live-stream"
	case Web:
		return "web"
	case Navigation:
		return "navigation"
	case EdgeAR:
		return "edge-AR"
	default:
		return fmt.Sprintf("AppKind(%d)", uint8(k))
	}
}

// AppSpec describes an application's traffic pattern.
type AppSpec struct {
	Kind     AppKind
	Interval time.Duration // request cadence
	Proto    uint8
	Server   nas.Addr
	Port     uint16
	// Buffer is the playback buffer that masks short outages (video ≈30 s,
	// live ≈3 s, AR none).
	Buffer time.Duration
	// NeedsDNS makes the app resolve its server name periodically; its
	// requests then depend on a fresh-enough resolution.
	NeedsDNS bool
	// DNSEvery issues one DNS query per this many requests.
	DNSEvery int
	// DNSTTL is how long a resolution stays usable; once it expires with
	// no fresh answer, requests fail locally as DNS failures.
	DNSTTL time.Duration
	// Timeout is the per-request response deadline.
	Timeout time.Duration
}

// Spec returns the paper-calibrated profile for an application kind.
func Spec(kind AppKind) AppSpec {
	switch kind {
	case Video:
		// Segment fetches reuse long-lived connections: no DNS dependence.
		return AppSpec{Kind: kind, Interval: time.Second, Proto: nas.ProtoTCP,
			Server: AppServerAddr, Port: 443, Buffer: 30 * time.Second,
			Timeout: 2 * time.Second}
	case LiveStream:
		return AppSpec{Kind: kind, Interval: 500 * time.Millisecond, Proto: nas.ProtoUDP,
			Server: AppServerAddr, Port: 8801, Buffer: 3 * time.Second,
			NeedsDNS: true, DNSEvery: 20, DNSTTL: time.Minute, Timeout: time.Second}
	case Web:
		// Browsing resolves roughly once a minute (OS cache in front of
		// per-click lookups), which paces Android's DNS-timeout rule.
		return AppSpec{Kind: kind, Interval: 5 * time.Second, Proto: nas.ProtoTCP,
			Server: AppServerAddr, Port: 443, Buffer: 0,
			NeedsDNS: true, DNSEvery: 20, DNSTTL: 3 * time.Minute, Timeout: 2 * time.Second}
	case Navigation:
		return AppSpec{Kind: kind, Interval: 2 * time.Second, Proto: nas.ProtoTCP,
			Server: AppServerAddr, Port: 443, Buffer: 0,
			NeedsDNS: false, DNSEvery: 0, Timeout: 2 * time.Second}
	case EdgeAR:
		return AppSpec{Kind: kind, Interval: 100 * time.Millisecond, Proto: nas.ProtoUDP,
			Server: EdgeServerAddr, Port: 9000, Buffer: 0,
			NeedsDNS: false, DNSEvery: 0, Timeout: 500 * time.Millisecond}
	default:
		panic(fmt.Sprintf("dataplane: unknown app kind %d", kind))
	}
}

// AppStats counts an app's traffic outcomes.
type AppStats struct {
	Requests  int
	Successes int
	Failures  int
	Reports   int
}

// App is one emulated application generating its traffic pattern over the
// device's data session.
type App struct {
	k    *sched.Kernel
	spec AppSpec

	// send transmits an uplink packet on the current session; bound by
	// the testbed. Returns false when no session is active.
	send func(radio.Packet) bool
	// dnsServer returns the session's current resolver.
	dnsServer func() nas.Addr

	monitor  *android.Monitor
	reporter func(report.FailureReport)
	// OnSuccess fires on every successful response (harness hook for
	// disruption measurement).
	OnSuccess func()

	reportThreshold int
	lastReport      time.Duration
	consecReqFails  int
	consecDNSFails  int
	reqSeq          int
	idBuf           []byte // scratch for flowID formatting
	pending         map[string]sched.Timer
	ticker          *sched.Ticker
	lastSuccessAt   time.Duration
	lastDNSOK       time.Duration

	stats AppStats
}

// NewApp creates an application bound to the device's send path.
func NewApp(k *sched.Kernel, spec AppSpec, send func(radio.Packet) bool, dnsServer func() nas.Addr) *App {
	return &App{
		k: k, spec: spec, send: send, dnsServer: dnsServer,
		reportThreshold: 2,
		pending:         make(map[string]sched.Timer),
		lastSuccessAt:   -1,
	}
}

// AttachMonitor feeds the app's outcomes into the Android monitor.
func (a *App) AttachMonitor(m *android.Monitor) { a.monitor = m }

// AttachReporter enables the SEED fast failure-report path.
func (a *App) AttachReporter(fn func(report.FailureReport)) { a.reporter = fn }

// Stats returns a copy of the counters.
func (a *App) Stats() AppStats { return a.stats }

// Spec returns the app's traffic profile.
func (a *App) Spec() AppSpec { return a.spec }

// LastSuccess returns the virtual time of the last successful response
// (-1 before any).
func (a *App) LastSuccess() time.Duration { return a.lastSuccessAt }

// Start begins traffic generation. The app starts with a warm DNS cache.
func (a *App) Start() {
	if a.ticker != nil {
		return
	}
	a.lastDNSOK = a.k.Now()
	a.ticker = a.k.Every(a.spec.Interval, a.cycle)
}

// Stop halts traffic generation and cancels outstanding requests.
func (a *App) Stop() {
	if a.ticker == nil {
		return
	}
	a.ticker.Stop()
	a.ticker = nil
	for id, t := range a.pending {
		t.Stop()
		delete(a.pending, id)
	}
}

func (a *App) cycle() {
	a.reqSeq++
	if a.spec.NeedsDNS && a.spec.DNSEvery > 0 && a.reqSeq%a.spec.DNSEvery == 0 {
		a.sendDNSQuery()
	}
	// A DNS-dependent app cannot issue requests once its resolution has
	// gone stale with no fresh answer.
	if a.spec.NeedsDNS && a.spec.DNSTTL > 0 && a.k.Now()-a.lastDNSOK > a.spec.DNSTTL {
		a.stats.Requests++
		a.stats.Failures++
		a.consecReqFails++
		a.maybeReport(true) // the app knows resolution is what failed
		return
	}
	a.sendRequest()
}

// flowID builds "<app>-<kind>-<seq>" through a reused scratch buffer: the
// only allocation left is the string itself (it keys the pending map, so
// it has to be materialized).
func (a *App) flowID(kind string) string {
	b := append(a.idBuf[:0], a.spec.Kind.String()...)
	b = append(b, '-')
	b = append(b, kind...)
	b = append(b, '-')
	b = strconv.AppendInt(b, int64(a.reqSeq), 10)
	a.idBuf = b
	return string(b)
}

func (a *App) sendRequest() {
	a.stats.Requests++
	id := a.flowID("req")
	pkt := radio.Packet{
		Proto: a.spec.Proto, Dst: [4]byte(a.spec.Server),
		SrcPort: uint16(20000 + a.reqSeq%20000), DstPort: a.spec.Port,
		Flow: id, Length: 600,
	}
	sent := a.send(pkt)
	if a.monitor != nil && sent {
		a.monitor.NotePacket(true)
	}
	if !sent {
		// No session: counts as an immediate transport failure.
		a.requestFailed(id, false)
		return
	}
	a.pending[id] = a.k.After(a.spec.Timeout, func() { a.requestFailed(id, false) })
}

func (a *App) sendDNSQuery() {
	id := a.flowID("dns")
	pkt := radio.Packet{
		Proto: nas.ProtoUDP, Dst: [4]byte(a.dnsServer()),
		SrcPort: uint16(30000 + a.reqSeq%20000), DstPort: 53,
		Flow: id, Length: 64, Meta: "app.example.com",
	}
	if !a.send(pkt) {
		a.requestFailed(id, true)
		return
	}
	a.pending[id] = a.k.After(a.spec.Timeout, func() { a.requestFailed(id, true) })
}

// HandleDownlink consumes a downlink packet belonging to this app's flows.
// It reports whether the packet was recognized.
func (a *App) HandleDownlink(pkt radio.Packet) bool {
	t, okP := a.pending[pkt.Flow]
	if !okP {
		return false
	}
	t.Stop()
	delete(a.pending, pkt.Flow)
	isDNS := len(pkt.Meta) >= 10 && pkt.Meta[:10] == "dns-answer"
	a.stats.Successes++
	if isDNS {
		a.consecDNSFails = 0
	} else {
		a.consecReqFails = 0
	}
	if isDNS {
		a.lastDNSOK = a.k.Now()
	}
	if a.monitor != nil {
		a.monitor.NotePacket(false)
		if isDNS {
			a.monitor.NoteDNSOutcome(true)
		} else if a.spec.Proto == nas.ProtoTCP {
			a.monitor.NoteTCPOutcome(true)
		}
	}
	if !isDNS {
		// Only application payload counts as app-level success; a DNS
		// answer alone does not un-stall the app.
		a.lastSuccessAt = a.k.Now()
		if a.OnSuccess != nil {
			a.OnSuccess()
		}
	}
	return true
}

func (a *App) requestFailed(id string, wasDNS bool) {
	delete(a.pending, id)
	a.stats.Failures++
	if wasDNS {
		a.consecDNSFails++
	} else {
		a.consecReqFails++
	}
	if a.monitor != nil {
		if wasDNS {
			a.monitor.NoteDNSOutcome(false)
		} else if a.spec.Proto == nas.ProtoTCP {
			a.monitor.NoteTCPOutcome(false)
		}
		// Android has no UDP rule: non-DNS UDP failures are invisible.
	}
	a.maybeReport(wasDNS)
}

func (a *App) maybeReport(wasDNS bool) {
	fails := a.consecReqFails
	if wasDNS {
		fails = a.consecDNSFails
	}
	if a.reporter == nil || fails < a.reportThreshold {
		return
	}
	now := a.k.Now()
	if a.lastReport != 0 && now-a.lastReport < time.Second {
		return
	}
	a.lastReport = now
	a.stats.Reports++
	var r report.FailureReport
	switch {
	case wasDNS:
		r = report.FailureReport{Type: report.FailDNS, Direction: report.DirBoth, Domain: "app.example.com"}
	case a.spec.Proto == nas.ProtoUDP:
		r = report.FailureReport{Type: report.FailUDP, Direction: report.DirBoth,
			Addr: [4]byte(a.spec.Server), Port: a.spec.Port}
	default:
		r = report.FailureReport{Type: report.FailTCP, Direction: report.DirBoth,
			Addr: [4]byte(a.spec.Server), Port: a.spec.Port}
	}
	a.reporter(r)
}

// Mux dispatches downlink packets to the apps owning their flows.
type Mux struct {
	apps []*App
	// OnUnclaimed receives packets no app recognized (e.g. probe
	// responses owned by the Android monitor).
	OnUnclaimed func(radio.Packet)
}

// Register adds an app to the mux.
func (m *Mux) Register(a *App) { m.apps = append(m.apps, a) }

// Dispatch routes one downlink packet.
func (m *Mux) Dispatch(pkt radio.Packet) {
	for _, a := range m.apps {
		if a.HandleDownlink(pkt) {
			return
		}
	}
	if m.OnUnclaimed != nil {
		m.OnUnclaimed(pkt)
	}
}
