// Package runner is the parallel scenario executor behind the experiment
// suite. Every experiment in the paper's evaluation replays many
// independent scenario cells — each a fresh Testbed on its own
// single-threaded sched.Kernel — so the cells can fan out across worker
// goroutines while each cell stays perfectly deterministic.
//
// Determinism contract: a cell's behaviour must depend only on its index
// (seeds come from sched.DeriveSeed(rootSeed, cellKey), never from shared
// RNG state), results are either written to a per-index slot (Map) or
// folded into shard-local accumulators combined with a commutative merge
// (Collect). Under that contract the outcome is bit-for-bit identical for
// any worker count, including the sequential workers=1 path.
//
// Dispatch policy: workers claim cells in contiguous batches from a shared
// atomic cursor, so the per-cell handoff cost (atomic RMW + potential
// goroutine wakeup) is amortized across a batch while stragglers still
// rebalance. Runs that cannot benefit from fan-out — too few cells to
// amortize goroutine startup, or a single-P runtime where goroutines only
// time-slice one core — execute inline on the calling goroutine, making
// the parallel path never slower than the sequential one. None of this
// affects results: which worker runs a cell is invisible by contract.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// minParallelCells is the fan-out threshold: below it, goroutine startup
// and the final barrier cost more than the cells themselves on the small
// experiments (figure11a, figure12), so the pool runs them inline.
const minParallelCells = 8

// targetBatchesPerWorker balances handoff amortization against load
// balancing: each worker claims ~4 batches over a run, so one slow batch
// can still be compensated by the others without per-cell dispatch.
const targetBatchesPerWorker = 4

// maxBatch caps the batch size so very large runs keep rebalancing.
const maxBatch = 64

// Pool is a scenario worker pool. The zero value is not usable; call New.
// A Pool carries no per-run state and may be shared by concurrent runs.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count. workers <= 0 selects
// GOMAXPROCS, the natural width for CPU-bound simulation cells.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// width returns how many goroutines to fan n cells across: 1 when the run
// is too small to amortize fan-out or the runtime has a single P (where
// extra goroutines only add scheduling overhead to one core).
func (p *Pool) width(n int) int {
	w := p.workers
	if w > n {
		w = n
	}
	if n < minParallelCells || runtime.GOMAXPROCS(0) == 1 {
		return 1
	}
	return w
}

// batchSize picks the contiguous chunk each claim takes from the cursor.
func batchSize(n, w int) int {
	b := n / (w * targetBatchesPerWorker)
	if b < 1 {
		b = 1
	}
	if b > maxBatch {
		b = maxBatch
	}
	return b
}

// run executes fn(i) for every i in [0, n), fanning across up to
// p.workers goroutines with batched claims.
func (p *Pool) run(n int, fn func(i int)) {
	w := p.width(n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	batch := int64(batchSize(n, w))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				end := next.Add(batch)
				start := end - batch
				if start >= int64(n) {
					return
				}
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					fn(int(i))
				}
			}
		}()
	}
	wg.Wait()
}

// Map runs fn for every index in [0, n) on the pool and returns the
// results in index order. Each result lands in its own pre-allocated
// slot, so no synchronization or ordering sensitivity exists beyond the
// final barrier.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.run(n, func(i int) { out[i] = fn(i) })
	return out
}

// Collect runs cell for every index in [0, n), giving each worker its own
// accumulator from newAcc, then folds the shard accumulators with merge
// and returns the combined one. merge(dst, src) must be commutative and
// associative over the cell contributions (multiset semantics — e.g.
// appending samples to a series that sorts before quantile queries);
// under that requirement the result is independent of which worker
// happened to run which cell.
func Collect[A any](p *Pool, n int, newAcc func() A, cell func(i int, acc A), merge func(dst, src A)) A {
	w := p.width(n)
	if w <= 1 {
		acc := newAcc()
		for i := 0; i < n; i++ {
			cell(i, acc)
		}
		return acc
	}
	batch := int64(batchSize(n, w))
	accs := make([]A, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		accs[g] = newAcc()
		go func(acc A) {
			defer wg.Done()
			for {
				end := next.Add(batch)
				start := end - batch
				if start >= int64(n) {
					return
				}
				if end > int64(n) {
					end = int64(n)
				}
				for i := start; i < end; i++ {
					cell(int(i), acc)
				}
			}
		}(accs[g])
	}
	wg.Wait()
	for g := 1; g < w; g++ {
		merge(accs[0], accs[g])
	}
	return accs[0]
}
