package cause

// Well-known cause constants used throughout the codebase. Values follow
// TS 24.501 (with cause #40 inherited from LTE EMM, which appears in the
// mixed 4G/5G public traces the paper analyzes).
const (
	// 5GMM (control plane)
	MMIllegalUE                     Code = 3
	MMPEINotAccepted                Code = 5
	MMIllegalME                     Code = 6
	MM5GSServicesNotAllowed         Code = 7
	MMUEIdentityCannotBeDerived     Code = 9
	MMImplicitlyDeregistered        Code = 10
	MMPLMNNotAllowed                Code = 11
	MMTrackingAreaNotAllowed        Code = 12
	MMRoamingNotAllowedInTA         Code = 13
	MMNoSuitableCellsInTA           Code = 15
	MMMACFailure                    Code = 20
	MMSynchFailure                  Code = 21
	MMCongestion                    Code = 22
	MMUESecurityCapMismatch         Code = 23
	MMSecurityModeRejected          Code = 24
	MMNon5GAuthUnacceptable         Code = 26
	MMN1ModeNotAllowed              Code = 27
	MMRestrictedServiceArea         Code = 28
	MMRedirectionToEPCRequired      Code = 31
	MMNoEPSBearerContextActivated   Code = 40 // LTE EMM heritage, present in traces
	MMLADNNotAvailable              Code = 43
	MMNoNetworkSlicesAvailable      Code = 62
	MMMaxPDUSessionsReached         Code = 65
	MMInsufficientSliceDNNRes       Code = 67
	MMInsufficientSliceRes          Code = 69
	MMNgKSIAlreadyInUse             Code = 71
	MMNon3GPPAccessNotAllowed       Code = 72
	MMServingNetworkNotAuthorized   Code = 73
	MMPayloadNotForwarded           Code = 90
	MMDNNNotSupportedInSlice        Code = 91
	MMInsufficientUPResources       Code = 92
	MMSemanticallyIncorrect         Code = 95
	MMInvalidMandatoryInfo          Code = 96
	MMMessageTypeNonExistent        Code = 97
	MMMessageTypeNotCompatible      Code = 98
	MMIENonExistent                 Code = 99
	MMConditionalIEError            Code = 100
	MMMessageNotCompatibleWithState Code = 101
	MMProtocolErrorUnspecified      Code = 111

	// 5GSM (data plane)
	SMOperatorDeterminedBarring       Code = 8
	SMInsufficientResources           Code = 26
	SMMissingOrUnknownDNN             Code = 27
	SMUnknownPDUSessionType           Code = 28
	SMUserAuthFailed                  Code = 29
	SMRequestRejectedUnspec           Code = 31
	SMServiceOptionNotSupported       Code = 32
	SMServiceOptionNotSubscribed      Code = 33
	SMPTIAlreadyInUse                 Code = 35
	SMRegularDeactivation             Code = 36
	SMNetworkFailure                  Code = 38
	SMReactivationRequested           Code = 39
	SMSemanticErrorInTFT              Code = 41
	SMSyntacticalErrorInTFT           Code = 42
	SMInvalidPDUSessionID             Code = 43
	SMSemanticErrorPacketFilter       Code = 44
	SMSyntacticalErrorPacketFilter    Code = 45
	SMOutOfLADNServiceArea            Code = 46
	SMPTIMismatch                     Code = 47
	SMIPv4OnlyAllowed                 Code = 50
	SMIPv6OnlyAllowed                 Code = 51
	SMPDUSessionDoesNotExist          Code = 54
	SMIPv4v6OnlyAllowed               Code = 57
	SMUnstructuredOnlyAllowed         Code = 58
	SMUnsupported5QI                  Code = 59
	SMEthernetOnlyAllowed             Code = 61
	SMInsufficientSliceDNNRes         Code = 67
	SMNotSupportedSSCMode             Code = 68
	SMInsufficientSliceRes            Code = 69
	SMMissingDNNInSlice               Code = 70
	SMInvalidPTIValue                 Code = 81
	SMMaxDataRateForUPIntegrityTooLow Code = 82
	SMSemanticErrorInQoS              Code = 83
	SMSyntacticalErrorInQoS           Code = 84
	SMInvalidMappedEPSBearerID        Code = 85
	SMSemanticallyIncorrect           Code = 95
	SMInvalidMandatoryInfo            Code = 96
	SMMessageTypeNonExistent          Code = 97
	SMMessageTypeNotCompatible        Code = 98
	SMIENonExistent                   Code = 99
	SMConditionalIEError              Code = 100
	SMMessageNotCompatibleWithState   Code = 101
	SMProtocolErrorUnspecified        Code = 111
)

func init() {
	// --- 5GMM (control plane) ---------------------------------------
	mm := func(c Code, name string, cfg ConfigKind, user, transient bool) {
		register(MM(c), name, cfg, user, transient)
	}
	mm(MMIllegalUE, "Illegal UE", ConfigNone, true, false)
	mm(MMPEINotAccepted, "PEI not accepted", ConfigNone, true, false)
	mm(MMIllegalME, "Illegal ME", ConfigNone, true, false)
	mm(MM5GSServicesNotAllowed, "5GS services not allowed", ConfigNone, true, false)
	mm(MMUEIdentityCannotBeDerived, "UE identity cannot be derived by the network", ConfigNone, false, false)
	mm(MMImplicitlyDeregistered, "Implicitly de-registered", ConfigNone, false, true)
	mm(MMPLMNNotAllowed, "PLMN not allowed", ConfigNone, false, false)
	mm(MMTrackingAreaNotAllowed, "Tracking area not allowed", ConfigNone, false, false)
	mm(MMRoamingNotAllowedInTA, "Roaming not allowed in this tracking area", ConfigNone, false, false)
	mm(MMNoSuitableCellsInTA, "No suitable cells in tracking area", ConfigNone, false, true)
	mm(MMMACFailure, "MAC failure", ConfigNone, false, true)
	mm(MMSynchFailure, "Synch failure", ConfigNone, false, true)
	mm(MMCongestion, "Congestion", ConfigNone, false, true)
	mm(MMUESecurityCapMismatch, "UE security capabilities mismatch", ConfigNone, false, false)
	mm(MMSecurityModeRejected, "Security mode rejected, unspecified", ConfigNone, false, false)
	mm(MMNon5GAuthUnacceptable, "Non-5G authentication unacceptable", ConfigSupportedRAT, false, false)
	mm(MMN1ModeNotAllowed, "N1 mode not allowed", ConfigSupportedRAT, false, false)
	mm(MMRestrictedServiceArea, "Restricted service area", ConfigNone, false, false)
	mm(MMRedirectionToEPCRequired, "Redirection to EPC required", ConfigSupportedRAT, false, false)
	mm(MMNoEPSBearerContextActivated, "No EPS bearer context activated", ConfigNone, false, false)
	mm(MMLADNNotAvailable, "LADN not available", ConfigNone, false, false)
	mm(MMNoNetworkSlicesAvailable, "No network slices available", ConfigSNSSAI, false, false)
	mm(MMMaxPDUSessionsReached, "Maximum number of PDU sessions reached", ConfigNone, false, false)
	mm(MMInsufficientSliceDNNRes, "Insufficient resources for specific slice and DNN", ConfigNone, false, true)
	mm(MMInsufficientSliceRes, "Insufficient resources for specific slice", ConfigNone, false, true)
	mm(MMNgKSIAlreadyInUse, "ngKSI already in use", ConfigNone, false, true)
	mm(MMNon3GPPAccessNotAllowed, "Non-3GPP access to 5GCN not allowed", ConfigSupportedRAT, false, false)
	mm(MMServingNetworkNotAuthorized, "Serving network not authorized", ConfigNone, true, false)
	mm(MMPayloadNotForwarded, "Payload was not forwarded", ConfigNone, false, true)
	mm(MMDNNNotSupportedInSlice, "DNN not supported or not subscribed in the slice", ConfigDNN, false, false)
	mm(MMInsufficientUPResources, "Insufficient user-plane resources for the PDU session", ConfigNone, false, true)
	mm(MMSemanticallyIncorrect, "Semantically incorrect message", ConfigGeneric, false, false)
	mm(MMInvalidMandatoryInfo, "Invalid mandatory information", ConfigGeneric, false, false)
	mm(MMMessageTypeNonExistent, "Message type non-existent or not implemented", ConfigNone, false, false)
	mm(MMMessageTypeNotCompatible, "Message type not compatible with the protocol state", ConfigNone, false, false)
	mm(MMIENonExistent, "Information element non-existent or not implemented", ConfigNone, false, false)
	mm(MMConditionalIEError, "Conditional IE error", ConfigGeneric, false, false)
	mm(MMMessageNotCompatibleWithState, "Message not compatible with the protocol state", ConfigNone, false, false)
	mm(MMProtocolErrorUnspecified, "Protocol error, unspecified", ConfigNone, false, false)

	// --- 5GSM (data plane) ------------------------------------------
	sm := func(c Code, name string, cfg ConfigKind, user, transient bool) {
		register(SM(c), name, cfg, user, transient)
	}
	sm(SMOperatorDeterminedBarring, "Operator determined barring", ConfigNone, true, false)
	sm(SMInsufficientResources, "Insufficient resources", ConfigNone, false, true)
	sm(SMMissingOrUnknownDNN, "Missing or unknown DNN", ConfigDNN, false, false)
	sm(SMUnknownPDUSessionType, "Unknown PDU session type", ConfigSessionType, false, false)
	sm(SMUserAuthFailed, "User authentication or authorization failed", ConfigNone, true, false)
	sm(SMRequestRejectedUnspec, "Request rejected, unspecified", ConfigNone, false, false)
	sm(SMServiceOptionNotSupported, "Service option not supported", ConfigNone, false, false)
	sm(SMServiceOptionNotSubscribed, "Requested service option not subscribed", ConfigDNN, false, false)
	sm(SMPTIAlreadyInUse, "PTI already in use", ConfigNone, false, true)
	sm(SMRegularDeactivation, "Regular deactivation", ConfigNone, false, false)
	sm(SMNetworkFailure, "Network failure", ConfigNone, false, true)
	sm(SMReactivationRequested, "Reactivation requested", ConfigDNN, false, false)
	sm(SMSemanticErrorInTFT, "Semantic error in the TFT operation", ConfigTFT, false, false)
	sm(SMSyntacticalErrorInTFT, "Syntactical error in the TFT operation", ConfigTFT, false, false)
	sm(SMInvalidPDUSessionID, "Invalid PDU session identity", ConfigPDUSession, false, false)
	sm(SMSemanticErrorPacketFilter, "Semantic errors in packet filter(s)", ConfigPacketFilter, false, false)
	sm(SMSyntacticalErrorPacketFilter, "Syntactical error in packet filter(s)", ConfigPacketFilter, false, false)
	sm(SMOutOfLADNServiceArea, "Out of LADN service area", ConfigNone, false, false)
	sm(SMPTIMismatch, "PTI mismatch", ConfigNone, false, true)
	sm(SMIPv4OnlyAllowed, "PDU session type IPv4 only allowed", ConfigSessionType, false, false)
	sm(SMIPv6OnlyAllowed, "PDU session type IPv6 only allowed", ConfigSessionType, false, false)
	sm(SMPDUSessionDoesNotExist, "PDU session does not exist", ConfigPDUSession, false, false)
	sm(SMIPv4v6OnlyAllowed, "PDU session type IPv4v6 only allowed", ConfigSessionType, false, false)
	sm(SMUnstructuredOnlyAllowed, "PDU session type Unstructured only allowed", ConfigSessionType, false, false)
	sm(SMUnsupported5QI, "Unsupported 5QI value", Config5QI, false, false)
	sm(SMEthernetOnlyAllowed, "PDU session type Ethernet only allowed", ConfigSessionType, false, false)
	sm(SMInsufficientSliceDNNRes, "Insufficient resources for specific slice and DNN", ConfigNone, false, true)
	sm(SMNotSupportedSSCMode, "Not supported SSC mode", ConfigPacketFilter, false, false)
	sm(SMInsufficientSliceRes, "Insufficient resources for specific slice", ConfigNone, false, true)
	sm(SMMissingDNNInSlice, "Missing or unknown DNN in a slice", ConfigDNN, false, false)
	sm(SMInvalidPTIValue, "Invalid PTI value", ConfigNone, false, false)
	sm(SMMaxDataRateForUPIntegrityTooLow, "Maximum data rate per UE for user-plane integrity protection is too low", ConfigNone, false, false)
	sm(SMSemanticErrorInQoS, "Semantic error in the QoS operation", ConfigPacketFilter, false, false)
	sm(SMSyntacticalErrorInQoS, "Syntactical error in the QoS operation", ConfigPacketFilter, false, false)
	sm(SMInvalidMappedEPSBearerID, "Invalid mapped EPS bearer identity", ConfigNone, false, false)
	sm(SMSemanticallyIncorrect, "Semantically incorrect message", ConfigGeneric, false, false)
	sm(SMInvalidMandatoryInfo, "Invalid mandatory information", ConfigGeneric, false, false)
	sm(SMMessageTypeNonExistent, "Message type non-existent or not implemented", ConfigNone, false, false)
	sm(SMMessageTypeNotCompatible, "Message type not compatible with the protocol state", ConfigNone, false, false)
	sm(SMIENonExistent, "Information element non-existent or not implemented", ConfigNone, false, false)
	sm(SMConditionalIEError, "Conditional IE error", ConfigGeneric, false, false)
	sm(SMMessageNotCompatibleWithState, "Message not compatible with the protocol state", ConfigNone, false, false)
	sm(SMProtocolErrorUnspecified, "Protocol error, unspecified", ConfigNone, false, false)
}
