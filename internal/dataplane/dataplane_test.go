package dataplane

import (
	"testing"
	"time"

	"github.com/seed5g/seed/internal/android"
	"github.com/seed5g/seed/internal/nas"
	"github.com/seed5g/seed/internal/radio"
	"github.com/seed5g/seed/internal/report"
	"github.com/seed5g/seed/internal/sched"
)

// fakePlane simulates the session + network below an app: it answers
// requests unless a protocol is blocked or DNS is down.
type fakePlane struct {
	k        *sched.Kernel
	blockTCP bool
	blockUDP bool
	dnsDown  bool
	noSess   bool
	apps     []*App
	sent     int
}

func (p *fakePlane) send(pkt radio.Packet) bool {
	if p.noSess {
		return false
	}
	p.sent++
	isDNS := pkt.Proto == nas.ProtoUDP && pkt.DstPort == 53
	if isDNS && p.dnsDown {
		return true // accepted but never answered
	}
	if !isDNS && pkt.Proto == nas.ProtoTCP && p.blockTCP {
		return true
	}
	if !isDNS && pkt.Proto == nas.ProtoUDP && p.blockUDP {
		return true
	}
	meta := "app-response"
	if isDNS {
		meta = "dns-answer:" + pkt.Meta
	}
	resp := radio.Packet{
		Proto: pkt.Proto, Src: pkt.Dst, Dst: pkt.Src,
		SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
		Flow: pkt.Flow, Meta: meta, Length: 1000,
	}
	p.k.After(20*time.Millisecond, func() {
		for _, a := range p.apps {
			if a.HandleDownlink(resp) {
				return
			}
		}
	})
	return true
}

func (p *fakePlane) dns() nas.Addr { return nas.Addr{10, 45, 0, 53} }

func newAppHarness(t *testing.T, kind AppKind) (*sched.Kernel, *App, *fakePlane) {
	t.Helper()
	k := sched.New(1)
	p := &fakePlane{k: k}
	a := NewApp(k, Spec(kind), p.send, p.dns)
	p.apps = append(p.apps, a)
	return k, a, p
}

func TestAppSteadyState(t *testing.T) {
	k, a, _ := newAppHarness(t, Web)
	a.Start()
	k.RunFor(time.Minute)
	st := a.Stats()
	if st.Requests == 0 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The final response may still be in flight at the cut-off.
	if st.Successes < st.Requests-1 {
		t.Fatalf("missing responses: %+v", st)
	}
	if a.LastSuccess() <= 0 {
		t.Fatal("LastSuccess not tracked")
	}
}

func TestAppReportsAfterConsecutiveTransportFailures(t *testing.T) {
	k, a, p := newAppHarness(t, Web)
	var reports []report.FailureReport
	a.AttachReporter(func(r report.FailureReport) { reports = append(reports, r) })
	a.Start()
	k.RunFor(30 * time.Second)
	p.blockTCP = true
	k.RunFor(30 * time.Second)
	if len(reports) == 0 {
		t.Fatal("no report after TCP block")
	}
	if reports[0].Type != report.FailTCP {
		t.Fatalf("report type = %v", reports[0].Type)
	}
	if reports[0].Port != 443 {
		t.Fatalf("report port = %d", reports[0].Port)
	}
}

func TestUDPAppReportsUDP(t *testing.T) {
	k, a, p := newAppHarness(t, EdgeAR)
	var reports []report.FailureReport
	a.AttachReporter(func(r report.FailureReport) { reports = append(reports, r) })
	a.Start()
	k.RunFor(5 * time.Second)
	p.blockUDP = true
	k.RunFor(5 * time.Second)
	if len(reports) == 0 || reports[0].Type != report.FailUDP {
		t.Fatalf("reports = %+v", reports)
	}
	// The AR app at 10 Hz with a 500 ms timeout reports within ~2 s.
}

func TestDNSFailureReportsAndTTLStalls(t *testing.T) {
	k, a, p := newAppHarness(t, Web)
	var reports []report.FailureReport
	a.AttachReporter(func(r report.FailureReport) { reports = append(reports, r) })
	a.Start()
	k.RunFor(2 * time.Minute)
	okBefore := a.Stats().Successes
	p.dnsDown = true
	// After the TTL (3 min) expires with no fresh answers, requests fail
	// locally as DNS failures and a DNS report goes out.
	k.RunFor(6 * time.Minute)
	hasDNS := false
	for _, r := range reports {
		if r.Type == report.FailDNS {
			hasDNS = true
		}
	}
	if !hasDNS {
		t.Fatalf("no DNS report; reports = %+v", reports)
	}
	if a.Stats().Successes <= okBefore {
		t.Fatal("expected some successes before TTL expiry")
	}
	if a.LastSuccess() > k.Now()-2*time.Minute {
		t.Fatal("app kept 'succeeding' after DNS died and TTL expired")
	}
}

func TestNoSessionCountsAsFailure(t *testing.T) {
	k, a, p := newAppHarness(t, Navigation)
	p.noSess = true
	var reports []report.FailureReport
	a.AttachReporter(func(r report.FailureReport) { reports = append(reports, r) })
	a.Start()
	k.RunFor(10 * time.Second)
	if a.Stats().Failures == 0 {
		t.Fatal("no failures with no session")
	}
	if len(reports) == 0 {
		t.Fatal("no report with no session")
	}
}

func TestMonitorIntegration(t *testing.T) {
	k, a, p := newAppHarness(t, Web)
	// Web-only traffic is too sparse for the stock 40-sample thresholds
	// (that is Figure 3's point: detection needs dense traffic); tune the
	// monitor down so the integration path itself is what's under test.
	cfg := android.DefaultConfig()
	cfg.EvalInterval = 5 * time.Second
	cfg.TCPMinSamples = 5
	cfg.TCPNoInboundOutbound = 10
	mon := android.NewMonitor(k, cfg, android.Hooks{})
	mon.Start()
	a.AttachMonitor(mon)
	a.Start()
	k.RunFor(time.Minute)
	p.blockTCP = true
	k.RunFor(5 * time.Minute)
	if !mon.Stalled() {
		t.Fatal("monitor did not see the TCP failures")
	}
}

func TestAppStopCancelsPending(t *testing.T) {
	k, a, p := newAppHarness(t, Web)
	p.blockTCP = true
	a.Start()
	k.RunFor(7 * time.Second)
	a.Stop()
	failed := a.Stats().Failures
	k.RunFor(30 * time.Second)
	if a.Stats().Failures != failed {
		t.Fatal("failures accumulated after Stop")
	}
	if a.Stats().Requests == 0 {
		t.Fatal("no requests before Stop")
	}
	a.Stop()  // idempotent
	a.Start() // restart works
	p.blockTCP = false
	k.RunFor(10 * time.Second)
	if a.Stats().Successes == 0 {
		t.Fatal("no successes after restart")
	}
}

func TestOnSuccessHookOnlyForAppPayload(t *testing.T) {
	k, a, _ := newAppHarness(t, Web)
	n := 0
	a.OnSuccess = func() { n++ }
	a.Start()
	k.RunFor(30 * time.Second)
	st := a.Stats()
	// Successes include DNS answers; the hook must fire only for app
	// payloads (requests), so n < total successes whenever DNS ran.
	if n == 0 {
		t.Fatal("hook never fired")
	}
	if n > st.Successes {
		t.Fatalf("hook fired %d > successes %d", n, st.Successes)
	}
}

func TestSpecs(t *testing.T) {
	for _, kind := range []AppKind{Video, LiveStream, Web, Navigation, EdgeAR} {
		s := Spec(kind)
		if s.Interval <= 0 || s.Timeout <= 0 || s.Port == 0 {
			t.Fatalf("%v spec incomplete: %+v", kind, s)
		}
	}
	if Spec(Video).Buffer != 30*time.Second {
		t.Fatal("video buffer drifted from the paper's ~30 s")
	}
	if Spec(LiveStream).Buffer != 3*time.Second {
		t.Fatal("live buffer drifted from the paper's ~3 s")
	}
	if Spec(EdgeAR).Buffer != 0 {
		t.Fatal("AR must have no buffer")
	}
	if Spec(EdgeAR).Proto != nas.ProtoUDP || Spec(Web).Proto != nas.ProtoTCP {
		t.Fatal("app protocols drifted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unknown kind did not panic")
		}
	}()
	Spec(AppKind(99))
}

func TestKindStrings(t *testing.T) {
	if Video.String() != "video" || EdgeAR.String() != "edge-AR" || AppKind(99).String() == "" {
		t.Fatal("AppKind strings drifted")
	}
}

func TestMuxDispatch(t *testing.T) {
	k := sched.New(1)
	p := &fakePlane{k: k}
	web := NewApp(k, Spec(Web), p.send, p.dns)
	nav := NewApp(k, Spec(Navigation), p.send, p.dns)
	mux := &Mux{}
	mux.Register(web)
	mux.Register(nav)
	unclaimed := 0
	mux.OnUnclaimed = func(radio.Packet) { unclaimed++ }
	p.apps = []*App{} // route through the mux instead
	webApp := web
	_ = webApp
	mux.Dispatch(radio.Packet{Flow: "unknown-flow"})
	if unclaimed != 1 {
		t.Fatalf("unclaimed = %d", unclaimed)
	}
}

// End-to-end against the real UPF/internet: exercised in the core and
// root-package tests; here we pin the Internet server behaviours.
func TestInternetServers(t *testing.T) {
	// covered via core5g integration; keep a compile-time reference
	_ = NewInternet
}
