package metrics

import "time"

// BatteryModel is the analytic substitute for the §7.2.1 device power
// measurement. Per-operation energy costs are expressed as percentage of
// total battery per operation; the baseline drain is calibrated so the
// no-SEED arm reproduces the paper's 5.4 %/30 min floor, making *relative*
// overheads the meaningful output (the paper reports +1.2 % for SEED and
// +8.5 % for MobileInsight over 30 minutes).
type BatteryModel struct {
	// BaselinePerMin is the default drain (screen, radio idle, app
	// traffic) in percent per minute.
	BaselinePerMin float64
	// SIMOpCost is the percent cost of one SIM diagnosis operation
	// (APDU + in-SIM processing on the card's low-power core).
	SIMOpCost float64
	// DiagPortMsgCost is the percent cost of decoding one diag-port
	// message on the application CPU (the MobileInsight approach).
	DiagPortMsgCost float64
}

// DefaultBatteryModel returns the calibrated model.
func DefaultBatteryModel() BatteryModel {
	return BatteryModel{
		BaselinePerMin:  5.4 / 30,  // 5.4 % per 30 min baseline
		SIMOpCost:       0.00067,   // ≈1.2 % per 1800 stress ops
		DiagPortMsgCost: 0.0000472, // ≈8.5 % per 30 min at ~100 msg/s
	}
}

// Drain returns the battery percentage consumed over elapsed time with
// the given operation counts.
func (m BatteryModel) Drain(elapsed time.Duration, simOps, diagPortMsgs int) float64 {
	return m.BaselinePerMin*elapsed.Minutes() +
		m.SIMOpCost*float64(simOps) +
		m.DiagPortMsgCost*float64(diagPortMsgs)
}

// CPUModel is the analytic substitute for the §7.2.1 core-side CPU
// measurement (Figure 11a): utilization grows with signaling load, and
// SEED adds a small per-failure diagnosis cost (decision-tree lookup plus
// the extra Auth-Request/PDU-reject signaling).
type CPUModel struct {
	// IdlePct is the core's utilization with no load.
	IdlePct float64
	// PerAttachPct is the cost of one attach/detach procedure per second.
	PerAttachPct float64
	// PerFailurePct is the stock core's cost of processing one failure
	// event per second (reject composition, context cleanup).
	PerFailurePct float64
	// SEEDPerFailurePct is SEED's additional per-failure cost (decision
	// tree + collaboration messages).
	SEEDPerFailurePct float64
}

// DefaultCPUModel returns the calibrated model: with 200 emulated UEs the
// baseline floor sits near 30 % as in Figure 11a, and SEED adds ≈4.7 % at
// 100 failures/s.
func DefaultCPUModel() CPUModel {
	return CPUModel{
		IdlePct:           8,
		PerAttachPct:      0.11,
		PerFailurePct:     0.065,
		SEEDPerFailurePct: 0.047,
	}
}

// Utilization returns average CPU percent for the given steady rates.
func (m CPUModel) Utilization(attachesPerSec, failuresPerSec float64, seedEnabled bool) float64 {
	u := m.IdlePct + m.PerAttachPct*attachesPerSec + m.PerFailurePct*failuresPerSec
	if seedEnabled {
		u += m.SEEDPerFailurePct * failuresPerSec
	}
	if u > 100 {
		u = 100
	}
	return u
}
