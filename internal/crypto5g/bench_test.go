package crypto5g

import (
	"testing"
)

var benchKey = []byte{0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6,
	0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf, 0x4f, 0x3c}

// Message sizes bracket what the NAS layer actually authenticates:
// a short Service Request and a Registration Accept with full IEs.
var benchMsg = make([]byte, 64)

func init() {
	for i := range benchMsg {
		benchMsg[i] = byte(i)
	}
}

// BenchmarkCMACKeyed measures the per-message CMAC cost with the key
// schedule and subkeys cached — the form every NAS security context and
// envelope uses. Must be allocation-free.
func BenchmarkCMACKeyed(b *testing.B) {
	c, err := NewCMACKey(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Sum(benchMsg)
	}
}

// BenchmarkCMACOneShot re-derives the key schedule every call, the shape
// the hot paths had before keyed forms were introduced. Kept as the
// baseline the keyed form is judged against.
func BenchmarkCMACOneShot(b *testing.B) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CMAC(benchKey, benchMsg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEIA2MAC(b *testing.B) {
	k, err := NewEIA2Key(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MAC(uint32(i), 1, Uplink, benchMsg)
	}
}

func BenchmarkEEA2XORKeyStream(b *testing.B) {
	k, err := NewEEA2Key(benchKey)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, len(benchMsg))
	b.SetBytes(int64(len(benchMsg)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.XORKeyStream(uint32(i), 1, Uplink, buf, benchMsg)
	}
}

// BenchmarkMilenageF2345 measures one full authentication vector
// derivation with the AES block cached on the Milenage instance (one SIM
// authenticates many times under the same K/OP).
func BenchmarkMilenageF2345(b *testing.B) {
	m, err := NewMilenage(benchKey, benchKey)
	if err != nil {
		b.Fatal(err)
	}
	var rand [16]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rand[0] = byte(i)
		m.F2345(rand)
	}
}

func BenchmarkMilenageF1(b *testing.B) {
	m, err := NewMilenage(benchKey, benchKey)
	if err != nil {
		b.Fatal(err)
	}
	var rand [16]byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.F1(rand, uint64(i), [2]byte{0x80, 0x00})
	}
}

// BenchmarkEnvelopeSealOpen measures SEED's diagnosis-payload envelope
// round trip (encrypt-then-MAC, one allocation per direction for the
// output buffer).
func BenchmarkEnvelopeSealOpen(b *testing.B) {
	tx, err := NewEnvelope(benchKey, benchKey, 5)
	if err != nil {
		b.Fatal(err)
	}
	rx, err := NewEnvelope(benchKey, benchKey, 5)
	if err != nil {
		b.Fatal(err)
	}
	payload := benchMsg[:32]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sealed, err := tx.Seal(Uplink, payload)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rx.Open(Uplink, sealed); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCryptoHotPathAllocs is the allocation regression guard for the
// keyed crypto forms: per-message CMAC, EIA2 and EEA2 must be
// allocation-free once the key is constructed.
func TestCryptoHotPathAllocs(t *testing.T) {
	c, err := NewCMACKey(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(500, func() { c.Sum(benchMsg) }); avg != 0 {
		t.Errorf("CMACKey.Sum allocates %v objects/op, want 0", avg)
	}

	ik, err := NewEIA2Key(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	ctr := uint32(0)
	// First call may grow the internal message buffer; warm it.
	ik.MAC(ctr, 1, Uplink, benchMsg)
	if avg := testing.AllocsPerRun(500, func() {
		ctr++
		ik.MAC(ctr, 1, Uplink, benchMsg)
	}); avg != 0 {
		t.Errorf("EIA2Key.MAC allocates %v objects/op, want 0", avg)
	}

	ek, err := NewEEA2Key(benchKey)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(benchMsg))
	if avg := testing.AllocsPerRun(500, func() {
		ctr++
		ek.XORKeyStream(ctr, 1, Uplink, buf, benchMsg)
	}); avg != 0 {
		t.Errorf("EEA2Key.XORKeyStream allocates %v objects/op, want 0", avg)
	}
}
