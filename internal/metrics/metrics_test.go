package metrics

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func secs(vs ...float64) *Series {
	s := NewSeries("t")
	for _, v := range vs {
		s.Add(time.Duration(v * float64(time.Second)))
	}
	return s
}

func TestPercentiles(t *testing.T) {
	s := secs(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if got := s.Median(); got != 5*time.Second {
		t.Fatalf("median = %v", got)
	}
	if got := s.Percentile(90); got != 9*time.Second {
		t.Fatalf("p90 = %v", got)
	}
	if got := s.Percentile(100); got != 10*time.Second {
		t.Fatalf("p100 = %v", got)
	}
	if got := s.Percentile(1); got != time.Second {
		t.Fatalf("p1 = %v", got)
	}
	if got := s.Max(); got != 10*time.Second {
		t.Fatalf("max = %v", got)
	}
	if got := s.Mean(); got != 5500*time.Millisecond {
		t.Fatalf("mean = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("empty")
	if s.Median() != 0 || s.Mean() != 0 || s.Max() != 0 || s.FractionBelow(time.Hour) != 0 {
		t.Fatal("empty series should return zeros")
	}
	if s.CDF() != nil {
		t.Fatal("empty CDF should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	s := secs(1, 2, 3, 4)
	if got := s.FractionBelow(3 * time.Second); got != 0.5 {
		t.Fatalf("FractionBelow(3s) = %v", got)
	}
	if got := s.FractionBelow(100 * time.Second); got != 1 {
		t.Fatalf("FractionBelow(100s) = %v", got)
	}
	if got := s.FractionBelow(time.Second); got != 0 {
		t.Fatalf("FractionBelow(1s) = %v", got)
	}
}

func TestCDF(t *testing.T) {
	s := secs(1, 1, 2, 4)
	pts := s.CDF()
	want := []CDFPoint{
		{time.Second, 0.5},
		{2 * time.Second, 0.75},
		{4 * time.Second, 1.0},
	}
	if len(pts) != len(want) {
		t.Fatalf("CDF = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("CDF[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestDisruptionTracker(t *testing.T) {
	now := time.Duration(0)
	d := NewDisruption("x", func() time.Duration { return now })
	d.Start()
	if !d.Open() {
		t.Fatal("not open after Start")
	}
	now = 5 * time.Second
	if d.OpenDuration() != 5*time.Second {
		t.Fatalf("open duration = %v", d.OpenDuration())
	}
	// Nested Start is ignored: first onset dominates.
	d.Start()
	now = 8 * time.Second
	d.End()
	if d.Open() {
		t.Fatal("still open after End")
	}
	if d.Series.Len() != 1 || d.Series.Max() != 8*time.Second {
		t.Fatalf("recorded %v", d.Series.Max())
	}
	// End without Start is a no-op.
	d.End()
	if d.Series.Len() != 1 {
		t.Fatal("spurious sample")
	}
	// Abort discards.
	d.Start()
	now = 20 * time.Second
	d.Abort()
	if d.Series.Len() != 1 || d.Open() {
		t.Fatal("abort recorded a sample")
	}
	if d.OpenDuration() != 0 {
		t.Fatal("OpenDuration nonzero while closed")
	}
}

func TestBatteryModelReproducesPaperNumbers(t *testing.T) {
	m := DefaultBatteryModel()
	elapsed := 30 * time.Minute

	baseline := m.Drain(elapsed, 0, 0)
	if math.Abs(baseline-5.4) > 0.01 {
		t.Fatalf("baseline 30-min drain = %.2f%%, want 5.4%%", baseline)
	}
	// SEED stress test: 1 diagnosis/s for 30 min.
	seed := m.Drain(elapsed, 1800, 0)
	if over := seed - baseline; math.Abs(over-1.2) > 0.15 {
		t.Fatalf("SEED overhead = %.2f%%, want ≈1.2%%", over)
	}
	// MobileInsight: continuous diag-port decoding (~100 msg/s).
	mi := m.Drain(elapsed, 0, 100*1800)
	if over := mi - baseline; math.Abs(over-8.5) > 0.5 {
		t.Fatalf("MobileInsight overhead = %.2f%%, want ≈8.5%%", over)
	}
}

func TestCPUModelShape(t *testing.T) {
	m := DefaultCPUModel()
	attachRate := 200.0 // 200 emulated UEs cycling
	base := m.Utilization(attachRate, 0, false)
	if base < 25 || base > 40 {
		t.Fatalf("baseline floor = %.1f%%, want ≈30%%", base)
	}
	at100 := m.Utilization(attachRate, 100, false)
	seedAt100 := m.Utilization(attachRate, 100, true)
	over := seedAt100 - at100
	if math.Abs(over-4.7) > 0.3 {
		t.Fatalf("SEED CPU overhead at 100 failures/s = %.2f%%, want ≈4.7%%", over)
	}
	// Monotone in failure rate, capped at 100.
	if m.Utilization(attachRate, 50, true) >= seedAt100 {
		t.Fatal("utilization not increasing in failure rate")
	}
	if m.Utilization(1e6, 1e6, true) != 100 {
		t.Fatal("utilization not capped at 100")
	}
}

// Property: Percentile is monotone in p and bounded by [min, max].
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		s := NewSeries("p")
		for _, v := range raw {
			s.Add(time.Duration(v))
		}
		sorted := append([]uint32(nil), raw...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		prev := time.Duration(-1)
		for p := 1.0; p <= 100; p += 7 {
			v := s.Percentile(p)
			if v < prev || v < time.Duration(sorted[0]) || v > time.Duration(sorted[len(sorted)-1]) {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
