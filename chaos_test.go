package seed_test

// Chaos hardening: random storms of every failure kind against a SEED
// device. Whatever the sequence, the invariants hold: no panics, and once
// injections stop the device always recovers.

import (
	"bytes"
	"math/rand"
	"testing"
	"time"

	seed "github.com/seed5g/seed"
	"github.com/seed5g/seed/internal/core"
	"github.com/seed5g/seed/internal/fleet"
)

func TestChaosStormAlwaysRecovers(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(trial))
			tb := seed.New(trial + 100)
			d := tb.NewDevice(seed.ModeSEEDR)
			web := d.AddApp(seed.AppWeb)
			d.Start()
			if !tb.RunUntil(d.Connected, time.Minute) {
				t.Fatal("initial attach failed")
			}
			web.Start()
			tb.Advance(30 * time.Second)

			// Storm: 12 random injections with random gaps.
			for i := 0; i < 12; i++ {
				switch rng.Intn(8) {
				case 0:
					tb.DesyncIdentity(d)
					tb.SimulateMobility(d)
				case 1:
					tb.InjectControlFailure(d, 22, seed.InjectOpts{
						Count: 1 + rng.Intn(3), HealAfter: time.Duration(1+rng.Intn(20)) * time.Second,
					})
					tb.SimulateMobility(d)
				case 2:
					tb.InjectDataFailure(d, 27, seed.InjectOpts{
						Count: 1 + rng.Intn(3), HealAfter: time.Duration(1+rng.Intn(20)) * time.Second,
					})
					tb.ReleaseSessions(d)
				case 3:
					tb.BlockTCP(d)
				case 4:
					tb.BlockUDP(d)
				case 5:
					tb.SetDNSOutage(true)
				case 6:
					tb.StallGateway(d)
				case 7:
					d.Reboot()
				}
				tb.Advance(time.Duration(1+rng.Intn(45)) * time.Second)
			}

			// Stop injecting; clear the standing network-side conditions
			// SEED cannot remove on its own behalf (operator heals).
			tb.ClearInjections(d)
			tb.SetDNSOutage(false)

			if !tb.RunUntil(d.Connected, 30*time.Minute) {
				t.Fatalf("trial %d: device wedged (state=%s)", trial, d.State())
			}
			// Traffic must flow again end to end.
			mark := tb.Now()
			ok := tb.RunUntil(func() bool { return web.LastSuccess() > mark }, 10*time.Minute)
			if !ok {
				t.Fatalf("trial %d: connected but traffic dead", trial)
			}
		})
	}
}

// TestChaosStormFleetUploadsFoldExactly runs fleet uploads MID-storm on a
// SEED-U and a SEED-R device: every record blob the carrier apps push OTA
// goes over the wire to a journaled fleet server while failures are being
// injected. At the end, a clean in-process fold of exactly the uploaded
// blobs must equal the server's aggregate byte-for-byte — chaos may delay
// or suppress uploads, but whatever was uploaded folds exactly once.
func TestChaosStormFleetUploadsFoldExactly(t *testing.T) {
	srv := fleet.NewServer(fleet.ServerConfig{
		Addr:       "127.0.0.1:0",
		Shards:     2,
		JournalDir: t.TempDir(),
		Logf:       func(string, ...any) {},
	})
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv.Shutdown() }()
	cl := fleet.NewClient(fleet.ClientConfig{Addr: srv.Addr().String(), Conns: 2})
	defer cl.Close()

	tb := seed.New(71)
	uploads := map[string][][]byte{} // IMSI → plaintext blobs, upload order
	hook := func(d *seed.Device) {
		fd := fleet.NewSimDevice(fleet.DefaultMasterKey, d.IMSI())
		d.Core().CApp.SetRecordSink(func(b []byte) {
			blob := append([]byte(nil), b...)
			sealed, err := fd.SealRecords(blob)
			if err == nil {
				err = cl.UploadRecords(fd.IMSI, sealed)
			}
			if err != nil {
				t.Errorf("fleet upload for %s: %v", fd.IMSI, err)
				return
			}
			uploads[fd.IMSI] = append(uploads[fd.IMSI], blob)
		})
	}
	du := tb.NewDevice(seed.ModeSEEDU)
	dr := tb.NewDevice(seed.ModeSEEDR)
	hook(du)
	hook(dr)
	du.Start()
	dr.Start()
	if !tb.RunUntil(func() bool { return du.Connected() && dr.Connected() }, time.Minute) {
		t.Fatal("initial attach failed")
	}

	// Each round: a learnable failure cycle on one device (persistent
	// injection → applet trials → recovery) while background chaos hits
	// the OTHER device, so the uploads fire while the network is still
	// misbehaving for its peer.
	rng := rand.New(rand.NewSource(71))
	devs := []*seed.Device{dr, du}
	for round := 0; round < 4; round++ {
		a, b := devs[round%2], devs[1-round%2]
		switch rng.Intn(3) {
		case 0:
			tb.BlockTCP(b)
		case 1:
			tb.StallGateway(b)
		case 2:
			tb.SetDNSOutage(true)
		}
		code := uint8(150 + round)
		opts := seed.InjectOpts{Count: -1, HealAfter: 30 * time.Second}
		if round%2 == 0 {
			tb.InjectControlFailure(a, code, opts)
			tb.SimulateMobility(a)
		} else {
			tb.InjectDataFailure(a, code, opts)
			tb.ReleaseInternetSessions(a)
			tb.RunUntil(func() bool { return !a.Connected() }, 30*time.Second)
		}
		if !tb.RunUntil(a.Connected, 10*time.Minute) {
			t.Fatalf("round %d: device never recovered", round)
		}
		tb.Advance(15 * time.Second)
		// Mid-storm OTA pulls: b's chaos is still standing while these ship.
		du.Core().CApp.UploadRecords()
		dr.Core().CApp.UploadRecords()
		tb.Advance(2 * time.Second)
		tb.ClearInjections(a)
		tb.ClearInjections(b)
		tb.SetDNSOutage(false)
	}

	tb.ClearInjections(du)
	tb.ClearInjections(dr)
	tb.SetDNSOutage(false)
	if !tb.RunUntil(func() bool { return du.Connected() && dr.Connected() }, 30*time.Minute) {
		t.Fatalf("devices wedged after storm (SEED-U=%s SEED-R=%s)", du.State(), dr.State())
	}
	// Final pull after the dust settles.
	tb.Advance(30 * time.Second)
	du.Core().CApp.UploadRecords()
	dr.Core().CApp.UploadRecords()
	tb.Advance(2 * time.Second)

	total := 0
	for imsi, blobs := range uploads {
		total += len(blobs)
		t.Logf("%s uploaded %d record blobs", imsi, len(blobs))
	}
	if total == 0 {
		t.Fatal("storm produced zero fleet uploads — nothing was exercised")
	}

	// Clean replay: fold exactly the uploaded plaintext blobs, in order,
	// into a fresh learner. Byte equality with the server's merged model is
	// the exactly-once claim.
	baseline := core.NewLearner(0.1, rand.New(rand.NewSource(1)))
	for _, blobs := range uploads {
		for _, blob := range blobs {
			rows, err := core.UnmarshalRecords(blob)
			if err != nil {
				t.Fatalf("uploaded blob does not parse: %v", err)
			}
			baseline.Crowdsource(rows)
		}
	}
	got, err := cl.FetchModel()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, fleet.MarshalModel(baseline.Export())) {
		t.Fatal("server aggregate differs from clean replay of uploaded blobs")
	}
}

func TestCollaborationSurvivesRadioJitter(t *testing.T) {
	tb := seed.New(9)
	d := tb.NewDevice(seed.ModeSEEDR)
	tb.SetRadioJitter(d, 30*time.Millisecond)
	d.Start()
	if !tb.RunUntil(d.Connected, time.Minute) {
		t.Fatal("attach failed under jitter")
	}
	// The multi-fragment diagnosis channel must still work: inject a
	// config failure whose fix rides several AUTN fragments.
	tb.MigrateSubscription(d, "a-rather-long-data-network-name-for-fragmentation", true)
	tb.EstablishIMS(d)
	tb.Advance(2 * time.Second)
	tb.ReleaseInternetSessions(d)
	if !tb.RunUntil(func() bool { return !d.Connected() }, time.Minute) {
		t.Fatal("failure never manifested")
	}
	if !tb.RunUntil(d.Connected, 5*time.Minute) {
		t.Fatal("no recovery under jitter")
	}
	if d.DiagnosesReceived() == 0 {
		t.Fatal("diagnosis never arrived under jitter")
	}
}
