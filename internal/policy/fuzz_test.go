package policy

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzDecode drives arbitrary bytes through the trace codec. Decode may
// reject but must not panic, and anything it accepts must re-encode
// canonically: Encode(Decode(x)) decodes back to the same events, and a
// second round trip is byte-stable (the fixed point of the codec).
func FuzzDecode(f *testing.F) {
	f.Add(Encode(nil))
	f.Add(Encode(codecEvents()))
	f.Add([]byte(codecHeader + "\n1 2 \"i\" 0 0 0 0 0 -1 0 0\n"))
	f.Add([]byte(codecHeader + "\n1 2 \"a b\" 0 0 0 0 0 -1 0 0\n"))
	f.Add([]byte("not a trace"))
	f.Add([]byte(codecHeader + "\n1 2 3\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := Decode(data)
		if err != nil {
			return
		}
		canon := Encode(evs)
		again, err := Decode(canon)
		if err != nil {
			t.Fatalf("canonical encoding rejected: %v", err)
		}
		if !reflect.DeepEqual(again, evs) {
			t.Fatalf("round trip changed events:\n%+v\nvs\n%+v", again, evs)
		}
		if !bytes.Equal(Encode(again), canon) {
			t.Fatal("canonical encoding not a fixed point")
		}
	})
}
