package core

import (
	"crypto/aes"
	"encoding/hex"
	"fmt"

	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/crypto5g"
	"github.com/seed5g/seed/internal/nas"
)

// DiagKind classifies a downlink diagnosis message (the four assistance
// types of §5.2 plus the plain standardized-cause delivery of §4.3).
type DiagKind uint8

const (
	// DiagCause delivers a standardized cause code.
	DiagCause DiagKind = iota + 1
	// DiagCauseConfig delivers a cause code plus the up-to-date
	// configuration (Appendix A causes).
	DiagCauseConfig
	// DiagSuggestAction delivers a customized cause with a suggested
	// reset action.
	DiagSuggestAction
	// DiagCongestion warns of cell/core congestion with a wait timer.
	DiagCongestion
	// DiagUnknown delivers a customized cause with no suggestion — the
	// online-learning trial trigger.
	DiagUnknown
)

func (k DiagKind) String() string {
	switch k {
	case DiagCause:
		return "cause"
	case DiagCauseConfig:
		return "cause+config"
	case DiagSuggestAction:
		return "suggested-action"
	case DiagCongestion:
		return "congestion"
	case DiagUnknown:
		return "unknown-cause"
	default:
		return fmt.Sprintf("DiagKind(%d)", uint8(k))
	}
}

// DiagMessage is the diagnosis payload the infrastructure sends to the
// SIM (sealed, then fragmented into AUTN fields).
type DiagMessage struct {
	Kind  DiagKind
	Plane cause.Plane
	Code  cause.Code

	// ConfigKind/Config carry the updated configuration for
	// DiagCauseConfig.
	ConfigKind cause.ConfigKind
	Config     []byte

	// Action is the suggestion for DiagSuggestAction.
	Action ActionID

	// WaitSeconds is the congestion backoff for DiagCongestion.
	WaitSeconds uint16
}

// Marshal encodes the message compactly (it must survive sealing and
// AUTN-field fragmentation with as few rounds as possible).
func (m DiagMessage) Marshal() []byte {
	out := []byte{byte(m.Kind), byte(m.Plane), byte(m.Code)}
	switch m.Kind {
	case DiagCauseConfig:
		out = append(out, byte(m.ConfigKind), byte(len(m.Config)))
		out = append(out, m.Config...)
	case DiagSuggestAction:
		out = append(out, byte(m.Action))
	case DiagCongestion:
		out = append(out, byte(m.WaitSeconds>>8), byte(m.WaitSeconds))
	}
	return out
}

// UnmarshalDiag decodes a diagnosis message.
func UnmarshalDiag(data []byte) (DiagMessage, error) {
	if len(data) < 3 {
		return DiagMessage{}, fmt.Errorf("core: diag message too short (%d)", len(data))
	}
	m := DiagMessage{
		Kind:  DiagKind(data[0]),
		Plane: cause.Plane(data[1]),
		Code:  cause.Code(data[2]),
	}
	rest := data[3:]
	switch m.Kind {
	case DiagCause, DiagUnknown:
	case DiagCauseConfig:
		if len(rest) < 2 {
			return m, fmt.Errorf("core: diag config header truncated")
		}
		m.ConfigKind = cause.ConfigKind(rest[0])
		n := int(rest[1])
		if len(rest) < 2+n {
			return m, fmt.Errorf("core: diag config truncated: want %d have %d", n, len(rest)-2)
		}
		m.Config = append([]byte(nil), rest[2:2+n]...)
	case DiagSuggestAction:
		if len(rest) < 1 {
			return m, fmt.Errorf("core: diag action truncated")
		}
		m.Action = ActionID(rest[0])
	case DiagCongestion:
		if len(rest) < 2 {
			return m, fmt.Errorf("core: diag congestion truncated")
		}
		m.WaitSeconds = uint16(rest[0])<<8 | uint16(rest[1])
	default:
		return m, fmt.Errorf("core: unknown diag kind %d", data[0])
	}
	return m, nil
}

// DeriveEnvelopeKeys derives the collaboration channel's encryption and
// integrity keys from the pre-shared in-SIM key K, as the prototype does
// ("using the pre-shared in-SIM key", §6). Both sides hold K, so both
// derive identical keys without any certificate exchange.
func DeriveEnvelopeKeys(k [16]byte) (enc, integ [16]byte) {
	block, err := aes.NewCipher(k[:])
	if err != nil {
		panic(err) // 16-byte array cannot fail
	}
	var encIn, intIn [16]byte
	copy(encIn[:], "SEED-ENC-KEY-001")
	copy(intIn[:], "SEED-INT-KEY-001")
	block.Encrypt(enc[:], encIn[:])
	block.Encrypt(integ[:], intIn[:])
	return
}

// NewChannelEnvelope builds the sealed channel for a subscriber key.
func NewChannelEnvelope(k [16]byte) *crypto5g.Envelope {
	enc, integ := DeriveEnvelopeKeys(k)
	env, err := crypto5g.NewEnvelope(enc[:], integ[:], 0x1D) // diagnosis bearer tag
	if err != nil {
		panic(err) // keys are fixed-size
	}
	return env
}

// --- AUTN fragmentation (downlink, Fig 7a) -----------------------------

// autnFragData is the payload bytes per AUTN fragment: 16 minus the
// 3-byte fragment header (seq, total, length).
const autnFragData = 13

// FragmentAUTN splits sealed bytes into AUTN-sized fragments. Each
// fragment is seq(1) | total(1) | len(1) | data(≤13), zero-padded.
func FragmentAUTN(sealed []byte) [][16]byte {
	total := (len(sealed) + autnFragData - 1) / autnFragData
	if total == 0 {
		total = 1
	}
	if total > 255 {
		panic(fmt.Sprintf("core: diagnosis payload too large: %d bytes", len(sealed)))
	}
	out := make([][16]byte, 0, total)
	for i := 0; i < total; i++ {
		var f [16]byte
		chunk := sealed[i*autnFragData:]
		if len(chunk) > autnFragData {
			chunk = chunk[:autnFragData]
		}
		f[0] = byte(i)
		f[1] = byte(total)
		f[2] = byte(len(chunk))
		copy(f[3:], chunk)
		out = append(out, f)
	}
	return out
}

// Reassembler collects fragments back into the sealed payload.
type Reassembler struct {
	parts [][]byte
	total int
	got   int
}

// Accept consumes one fragment. It returns the complete payload once all
// fragments arrived, or nil while incomplete. Out-of-order and duplicate
// fragments are tolerated; a fragment with a different total resets the
// assembly (new message preempts a stale partial one).
func (r *Reassembler) Accept(frag [16]byte) []byte {
	seq, total, n := int(frag[0]), int(frag[1]), int(frag[2])
	if total == 0 || seq >= total || n > autnFragData {
		return nil
	}
	if total != r.total {
		r.parts = make([][]byte, total)
		r.total = total
		r.got = 0
	}
	if r.parts[seq] == nil {
		r.parts[seq] = append([]byte(nil), frag[3:3+n]...)
		r.got++
	}
	if r.got < r.total {
		return nil
	}
	var full []byte
	for _, p := range r.parts {
		full = append(full, p...)
	}
	r.parts = nil
	r.total = 0
	r.got = 0
	return full
}

// --- DNN fragmentation (uplink, Fig 7b) ---------------------------------

// dnnFragData is the sealed-payload bytes per DNN fragment: the DNN
// budget (100) minus the "DIAG" prefix, hex-encoded, with a 2-byte header.
const dnnFragData = (nas.MaxDNNLen-len("DIAG"))/2 - 2 // 46 bytes

// FragmentDNN splits sealed report bytes into DIAG DNN strings.
func FragmentDNN(sealed []byte) []string {
	total := (len(sealed) + dnnFragData - 1) / dnnFragData
	if total == 0 {
		total = 1
	}
	if total > 255 {
		panic(fmt.Sprintf("core: report too large: %d bytes", len(sealed)))
	}
	out := make([]string, 0, total)
	for i := 0; i < total; i++ {
		chunk := sealed[i*dnnFragData:]
		if len(chunk) > dnnFragData {
			chunk = chunk[:dnnFragData]
		}
		frag := append([]byte{byte(i), byte(total)}, chunk...)
		out = append(out, "DIAG"+hex.EncodeToString(frag))
	}
	return out
}

// DNNReassembler collects uplink DNN fragments per UE.
type DNNReassembler struct {
	parts [][]byte
	total int
	got   int
}

// Accept consumes the payload portion of one DIAG DNN (everything after
// the prefix, still hex). It returns the complete sealed report once all
// fragments arrived.
func (r *DNNReassembler) Accept(hexPayload string) ([]byte, error) {
	raw, err := hex.DecodeString(hexPayload)
	if err != nil {
		return nil, fmt.Errorf("core: bad DIAG DNN encoding: %w", err)
	}
	if len(raw) < 2 {
		return nil, fmt.Errorf("core: DIAG DNN fragment too short")
	}
	seq, total := int(raw[0]), int(raw[1])
	if total == 0 || seq >= total {
		return nil, fmt.Errorf("core: bad DIAG DNN fragment header %d/%d", seq, total)
	}
	if total != r.total {
		r.parts = make([][]byte, total)
		r.total = total
		r.got = 0
	}
	if r.parts[seq] == nil {
		r.parts[seq] = append([]byte(nil), raw[2:]...)
		r.got++
	}
	if r.got < r.total {
		return nil, nil
	}
	var full []byte
	for _, p := range r.parts {
		full = append(full, p...)
	}
	r.parts = nil
	r.total = 0
	r.got = 0
	return full, nil
}

// DiagAck is the AUTS payload the SIM returns to acknowledge a received
// diagnosis fragment.
func DiagAck(seq byte) []byte {
	return []byte{0x5E, 0xED, seq, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}
}

// ParseDiagAck extracts the acknowledged fragment sequence from an AUTS.
func ParseDiagAck(auts []byte) (byte, bool) {
	if len(auts) >= 3 && auts[0] == 0x5E && auts[1] == 0xED {
		return auts[2], true
	}
	return 0, false
}
