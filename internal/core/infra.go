package core

import (
	"reflect"
	"time"

	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/core5g"
	"github.com/seed5g/seed/internal/crypto5g"
	"github.com/seed5g/seed/internal/nas"
	"github.com/seed5g/seed/internal/report"
	"github.com/seed5g/seed/internal/sched"
)

// InfraStats counts plugin activity.
type InfraStats struct {
	DiagsSent      int
	FragmentsSent  int
	AcksReceived   int
	TimeoutAssists int
	ReportsIn      int
	PolicyFixes    int
	DNSFixes       int
	Suggestions    int
	LearningNulls  int
	RecordUploads  int
}

// InfraPlugin is the SEED core-network module of §6: it hooks the AMF/SMF
// reject-generation paths, classifies failures with the Figure 8 decision
// tree, fetches up-to-date configurations from the subscription store,
// warns about congestion, runs the infrastructure side of the online
// learning algorithm, and drives the real-time collaboration channel.
type InfraPlugin struct {
	k   *sched.Kernel
	net *core5g.Network

	// PrepLatency models diagnosis-message preparation (§7.2.2 measures
	// 12.8 ms on the downlink).
	PrepLatency time.Duration

	// Learner is the Algorithm 1 infrastructure side.
	Learner *Learner

	// customActions maps operator-customized (unstandardized) causes to
	// configured suggested actions (§5.2 "customized causes with
	// suggested actions").
	customActions map[cause.Cause]ActionID

	congested   bool
	congestWait uint16

	envs    map[string]*crypto5g.Envelope
	reasm   map[string]*DNNReassembler
	pending map[string][][16]byte // diagnosis fragments awaiting ACK

	// Figure 12 instrumentation (optional).
	// OnDiagTiming fires when a delivery's final ACK arrives, with the
	// preparation time (request → first fragment sent) and transmission
	// time (first fragment → final ACK).
	OnDiagTiming func(prep, trans time.Duration)
	// OnReportReceived fires when an uplink report is fully reassembled
	// and decrypted.
	OnReportReceived func(imsi string)

	diagStart map[string]time.Duration // SendDiagnosis call time
	diagSent  map[string]time.Duration // first fragment send time

	// tracer is the decision-trace hook (trace.go); nil by default, so the
	// uninstrumented Figure 8 paths pay only a nil check.
	tracer DecisionTracer

	stats InfraStats
}

// SetDecisionTracer attaches (or with nil detaches) a decision tracer to
// the plugin's Figure 8 classification and learning paths.
func (p *InfraPlugin) SetDecisionTracer(t DecisionTracer) { p.tracer = t }

// trace emits ev, stamping the virtual time. Guard with p.tracer != nil.
func (p *InfraPlugin) trace(ev DecisionEvent) {
	ev.At = p.k.Now()
	p.tracer.Decision(ev)
}

// NewInfraPlugin creates and attaches the plugin to a core network.
func NewInfraPlugin(k *sched.Kernel, net *core5g.Network) *InfraPlugin {
	p := &InfraPlugin{
		k: k, net: net,
		PrepLatency:   12800 * time.Microsecond,
		Learner:       NewLearner(0.1, k.Rand()),
		customActions: make(map[cause.Cause]ActionID),
		envs:          make(map[string]*crypto5g.Envelope),
		reasm:         make(map[string]*DNNReassembler),
		pending:       make(map[string][][16]byte),
		diagStart:     make(map[string]time.Duration),
		diagSent:      make(map[string]time.Duration),
	}
	net.AMF.OnReject = func(imsi string, code cause.Code) {
		p.onReject(imsi, cause.MM(code))
	}
	net.SMF.OnReject = func(imsi string, code cause.Code) {
		p.onReject(imsi, cause.SM(code))
	}
	net.SMF.OnDiagReport = p.onUplinkFragment
	net.AMF.OnDiagAck = p.onDiagAck
	net.AMF.OnTimeoutDrop = p.onTimeout
	net.SMF.OnTimeoutDrop = p.onTimeout
	net.SMF.AllowDiagSessions = true
	return p
}

// Stats returns a copy of the counters.
func (p *InfraPlugin) Stats() InfraStats { return p.stats }

// SetCongestion toggles the congestion warning path: while congested,
// diagnosis deliveries become wait notices instead of reset triggers.
func (p *InfraPlugin) SetCongestion(on bool, waitSeconds uint16) {
	p.congested = on
	p.congestWait = waitSeconds
}

// AddCustomAction configures a suggested action for an operator-
// customized cause.
func (p *InfraPlugin) AddCustomAction(c cause.Cause, a ActionID) {
	p.customActions[c] = a
}

func (p *InfraPlugin) envelope(imsi string) *crypto5g.Envelope {
	if e, okE := p.envs[imsi]; okE {
		return e
	}
	sub, okS := p.net.UDM.Subscriber(imsi)
	if !okS || !sub.SEEDEnabled {
		return nil
	}
	e := NewChannelEnvelope(sub.K)
	p.envs[imsi] = e
	return e
}

// onReject is the Figure 8 "active" branch: a reject was composed; decide
// what assistance to send.
func (p *InfraPlugin) onReject(imsi string, c cause.Cause) {
	if p.congested {
		if p.tracer != nil {
			p.trace(DecisionEvent{Stage: StageInfraCongestion, IMSI: imsi, Plane: c.Plane, Code: c.Code, Seq: -1, Wait: time.Duration(p.congestWait) * time.Second})
		}
		p.SendDiagnosis(imsi, DiagMessage{
			Kind: DiagCongestion, Plane: c.Plane, Code: c.Code,
			WaitSeconds: p.congestWait,
		})
		return
	}
	info, std := cause.Lookup(c)
	switch {
	case std && info.ConfigRelated():
		kind, cfg := p.lookupConfig(imsi, c, info.Config)
		if p.tracer != nil {
			p.trace(DecisionEvent{Stage: StageInfraConfig, IMSI: imsi, Plane: c.Plane, Code: c.Code, Seq: -1})
		}
		p.SendDiagnosis(imsi, DiagMessage{
			Kind: DiagCauseConfig, Plane: c.Plane, Code: c.Code,
			ConfigKind: kind, Config: cfg,
		})
	case std:
		if p.tracer != nil {
			p.trace(DecisionEvent{Stage: StageInfraCause, IMSI: imsi, Plane: c.Plane, Code: c.Code, Seq: -1})
		}
		p.SendDiagnosis(imsi, DiagMessage{Kind: DiagCause, Plane: c.Plane, Code: c.Code})
	default:
		// Unstandardized (customized) cause.
		if a, okA := p.customActions[c]; okA {
			p.stats.Suggestions++
			if p.tracer != nil {
				p.trace(DecisionEvent{Stage: StageInfraCustomSuggest, IMSI: imsi, Plane: c.Plane, Code: c.Code, Action: a, Seq: -1})
			}
			p.SendDiagnosis(imsi, DiagMessage{
				Kind: DiagSuggestAction, Plane: c.Plane, Code: c.Code, Action: a,
			})
			return
		}
		if a, okA := p.Learner.Suggest(c); okA {
			p.stats.Suggestions++
			if p.tracer != nil {
				p.trace(DecisionEvent{Stage: StageInfraLearnerSuggest, IMSI: imsi, Plane: c.Plane, Code: c.Code, Action: a, Seq: -1, Evidence: clampEvidence(p.Learner.Evidence(c))})
			}
			p.SendDiagnosis(imsi, DiagMessage{
				Kind: DiagSuggestAction, Plane: c.Plane, Code: c.Code, Action: a,
			})
			return
		}
		p.stats.LearningNulls++
		if p.tracer != nil {
			p.trace(DecisionEvent{Stage: StageInfraLearnerNull, IMSI: imsi, Plane: c.Plane, Code: c.Code, Seq: -1, Evidence: clampEvidence(p.Learner.Evidence(c))})
		}
		p.SendDiagnosis(imsi, DiagMessage{Kind: DiagUnknown, Plane: c.Plane, Code: c.Code})
	}
}

// clampEvidence folds an observation count into the event's int32 field.
func clampEvidence(n int) int32 {
	if n > 1<<31-1 {
		return 1<<31 - 1
	}
	return int32(n)
}

// onTimeout is the Figure 8 passive "without device response" branch: the
// infrastructure suggests a hardware reset.
func (p *InfraPlugin) onTimeout(imsi string) {
	p.stats.TimeoutAssists++
	if p.tracer != nil {
		p.trace(DecisionEvent{Stage: StageInfraTimeoutAssist, IMSI: imsi, Plane: cause.ControlPlane, Action: ActionB1, Seq: -1})
	}
	p.SendDiagnosis(imsi, DiagMessage{
		Kind: DiagSuggestAction, Plane: cause.ControlPlane, Action: ActionB1,
	})
}

// lookupConfig fetches the up-to-date configuration item for a
// config-related cause from the subscription store (Appendix A).
func (p *InfraPlugin) lookupConfig(imsi string, c cause.Cause, kind cause.ConfigKind) (cause.ConfigKind, []byte) {
	sub, okS := p.net.UDM.Subscriber(imsi)
	if !okS {
		return kind, nil
	}
	switch kind {
	case cause.ConfigDNN:
		return kind, []byte(sub.DefaultDNN)
	case cause.ConfigSNSSAI:
		if len(sub.AllowedSST) > 0 {
			return kind, []byte{sub.AllowedSST[0], 0, 0, 0}
		}
		return kind, []byte{1, 0, 0, 0}
	case cause.ConfigSupportedRAT:
		return kind, []byte{2} // NR
	case cause.ConfigSessionType:
		return kind, []byte{byte(nas.SessionIPv4)}
	case cause.ConfigTFT, cause.ConfigPacketFilter, cause.Config5QI, cause.ConfigPDUSession:
		// Applied through a session modification; the config payload is
		// just the marker (the authoritative values ride in the
		// Modification Command).
		return kind, []byte{1}
	default:
		return kind, nil
	}
}

// SendDiagnosis seals, fragments, and begins delivering a diagnosis
// message over the Authentication Request channel (Fig 7a).
func (p *InfraPlugin) SendDiagnosis(imsi string, m DiagMessage) {
	env := p.envelope(imsi)
	if env == nil {
		return
	}
	p.diagStart[imsi] = p.k.Now()
	p.k.After(p.PrepLatency, func() {
		sealed, err := env.Seal(crypto5g.Downlink, m.Marshal())
		if err != nil {
			return
		}
		p.stats.DiagsSent++
		p.pending[imsi] = FragmentAUTN(sealed)
		p.diagSent[imsi] = p.k.Now()
		p.sendNextFragment(imsi)
	})
}

func (p *InfraPlugin) sendNextFragment(imsi string) {
	frags := p.pending[imsi]
	if len(frags) == 0 {
		delete(p.pending, imsi)
		return
	}
	frag := frags[0]
	p.stats.FragmentsSent++
	p.net.AMF.MarkDiagPending(imsi)
	p.net.AMF.SendRaw(imsi, &nas.AuthenticationRequest{
		NgKSI: 7, RAND: nas.DFlagRAND, AUTN: frag,
	})
}

// onDiagAck advances fragment delivery when the SIM's AUTS ACK arrives.
func (p *InfraPlugin) onDiagAck(imsi string, auts []byte) {
	if _, okA := ParseDiagAck(auts); !okA {
		return
	}
	p.stats.AcksReceived++
	if frags, okF := p.pending[imsi]; okF && len(frags) > 0 {
		p.pending[imsi] = frags[1:]
		if len(p.pending[imsi]) == 0 && p.OnDiagTiming != nil {
			p.OnDiagTiming(p.diagSent[imsi]-p.diagStart[imsi], p.k.Now()-p.diagSent[imsi])
		}
		p.sendNextFragment(imsi)
	}
}

// onUplinkFragment consumes one DIAG-DNN payload (hex after the prefix).
func (p *InfraPlugin) onUplinkFragment(imsi string, payload []byte) {
	r := p.reasm[imsi]
	if r == nil {
		r = &DNNReassembler{}
		p.reasm[imsi] = r
	}
	sealed, err := r.Accept(string(payload))
	if err != nil || sealed == nil {
		return
	}
	env := p.envelope(imsi)
	if env == nil {
		return
	}
	raw, err := env.Open(crypto5g.Uplink, sealed)
	if err != nil {
		return
	}
	rep, err := report.Unmarshal(raw)
	if err != nil {
		return
	}
	p.stats.ReportsIn++
	p.k.After(p.PrepLatency, func() {
		if p.OnReportReceived != nil {
			p.OnReportReceived(imsi)
		}
		p.handleReport(imsi, rep)
	})
}

// handleReport validates a device failure report against network-side
// policy state and repairs what it finds (§4.4.2 with-root flow).
func (p *InfraPlugin) handleReport(imsi string, rep report.FailureReport) {
	sub, okS := p.net.UDM.Subscriber(imsi)
	if !okS {
		return
	}
	switch rep.Type {
	case report.FailTCP, report.FailUDP:
		proto := nas.ProtoTCP
		if rep.Type == report.FailUDP {
			proto = nas.ProtoUDP
		}
		fixed := false
		// Conflicting operator policy blocks: remove the offending ones.
		var kept []core5g.PolicyBlock
		for _, b := range p.net.UPF.Blocks(imsi) {
			if b.Proto == proto || b.Proto == nas.ProtoAny {
				fixed = true
				continue
			}
			kept = append(kept, b)
		}
		if fixed {
			p.net.UPF.ClearBlocks(imsi)
			for _, b := range kept {
				p.net.UPF.AddBlock(imsi, b)
			}
			p.stats.PolicyFixes++
		}
		// Re-push the authoritative session configuration only where the
		// deployed one drifted (a corrupted TFT); the device-side reset
		// covers everything else (§4.4.2).
		for _, id := range p.net.SMF.SessionIDs(imsi) {
			ctx, okC := p.net.SMF.Session(imsi, id)
			if !okC || ctx.Diag {
				continue
			}
			authoritative, okD := sub.Sessions[ctx.DNN]
			if okD && !reflect.DeepEqual(ctx.Config, authoritative) {
				p.net.SMF.PushModification(imsi, id, authoritative)
			}
		}
	case report.FailDNS:
		// Carrier LDNS trouble: repoint at the public resolver — both the
		// live session (modification) and the authoritative subscription
		// config, so a followup reset's fresh session also gets the fix.
		p.stats.DNSFixes++
		for dnn, cfg := range sub.Sessions {
			cfg.DNS = []nas.Addr{core5g.PublicDNSAddr}
			sub.Sessions[dnn] = cfg
		}
		for _, id := range p.net.SMF.SessionIDs(imsi) {
			ctx, okC := p.net.SMF.Session(imsi, id)
			if !okC || ctx.Diag {
				continue
			}
			cfg := ctx.Config
			cfg.DNS = []nas.Addr{core5g.PublicDNSAddr}
			p.net.SMF.PushModification(imsi, id, cfg)
		}
	}
}

// ReceiveRecordUpload ingests a SIM's learning-record blob (the OTA leg
// of Algorithm 1) into the crowd-sourced model.
func (p *InfraPlugin) ReceiveRecordUpload(blob []byte) error {
	recs, err := UnmarshalRecords(blob)
	if err != nil {
		return err
	}
	p.stats.RecordUploads++
	if p.tracer != nil {
		merged := 0
		for _, acts := range recs {
			for _, n := range acts {
				merged += n
			}
		}
		p.trace(DecisionEvent{Stage: StageInfraCrowdsource, Seq: -1, Evidence: clampEvidence(merged)})
	}
	p.Learner.Crowdsource(recs)
	return nil
}
