// Package netemu emulates the communication links of the SEED testbed:
// the radio link between modem and gNB (carrying both NAS signaling and
// user data), the backhaul between gNB and core functions, and the local
// buses inside the device (APDU between modem and SIM, binder/API calls
// between OS, carrier app, and modem).
//
// A Link delivers arbitrary message values to a handler after a configured
// latency (+ seeded jitter), optionally dropping messages probabilistically
// or while the link is down. Delivery order between two messages sent on
// the same link is preserved whenever their delivery times do not invert
// (FIFO is additionally enforced when Jitter would reorder them).
package netemu

import (
	"time"

	"github.com/seed5g/seed/internal/sched"
)

// Handler consumes messages delivered by a Link.
type Handler func(msg any)

// Link is a unidirectional message channel with latency, jitter and loss.
type Link struct {
	k       *sched.Kernel
	name    string
	handler Handler

	Latency time.Duration // base one-way delay
	Jitter  time.Duration // uniform extra delay in [0, Jitter)
	Loss    float64       // probability a message is silently dropped

	// Adversarial knobs, all off by default. Each draws from the kernel
	// RNG at Send time, so a fixed kernel seed reproduces the exact same
	// reorder/corrupt/duplicate pattern.

	// Reorder is the probability a message skips the FIFO clamp and takes
	// an extra uniform delay in [0, ReorderSpan), letting later sends
	// overtake it. ReorderSpan defaults to 4×Latency when zero.
	Reorder     float64
	ReorderSpan time.Duration
	// Dup is the probability a message is delivered a second time, the
	// duplicate trailing the original by a uniform delay in [0, Latency].
	Dup float64
	// Corrupt is the probability a message is passed through Corrupter
	// before delivery. The Corrupter must not mutate the original message
	// in place (the sender may retain it); it returns the tampered copy.
	// With no Corrupter installed, Corrupt is ignored.
	Corrupt   float64
	Corrupter func(msg any) any

	down        bool
	lastArrival time.Duration

	// deliver is the stored delivery callback: Send hands it to the
	// kernel's AtArg with the message as the argument, so queuing a
	// message allocates neither a closure nor (with the pooled event
	// kernel) an event.
	deliver func(msg any)

	sent       int
	delivered  int
	dropped    int
	reordered  int
	corrupted  int
	duplicated int
}

// NewLink creates a link on kernel k named name (for diagnostics)
// delivering to handler with the given base latency.
func NewLink(k *sched.Kernel, name string, latency time.Duration, handler Handler) *Link {
	l := &Link{k: k, name: name, Latency: latency, handler: handler}
	l.deliver = func(msg any) {
		l.delivered++
		l.handler(msg)
	}
	return l
}

// Name returns the link's diagnostic name.
func (l *Link) Name() string { return l.name }

// SetDown partitions (true) or heals (false) the link. Messages sent while
// the link is down are dropped; messages already in flight still arrive.
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports whether the link is partitioned.
func (l *Link) Down() bool { return l.down }

// Send queues msg for delivery. It returns false if the message was
// dropped (partition or random loss).
func (l *Link) Send(msg any) bool {
	l.sent++
	if l.down {
		l.dropped++
		return false
	}
	if l.Loss > 0 && l.k.Rand().Float64() < l.Loss {
		l.dropped++
		return false
	}
	if l.Corrupt > 0 && l.Corrupter != nil && l.k.Rand().Float64() < l.Corrupt {
		msg = l.Corrupter(msg)
		l.corrupted++
	}
	d := l.Latency
	if l.Jitter > 0 {
		d += time.Duration(l.k.Rand().Int63n(int64(l.Jitter)))
	}
	arrival := l.k.Now() + d
	if l.Reorder > 0 && l.k.Rand().Float64() < l.Reorder {
		// A reordered message neither respects the FIFO clamp nor
		// advances it: it straggles while later sends overtake.
		span := l.ReorderSpan
		if span <= 0 {
			span = 4 * l.Latency
		}
		if span > 0 {
			arrival += time.Duration(l.k.Rand().Int63n(int64(span)))
		}
		l.reordered++
	} else {
		if arrival < l.lastArrival {
			arrival = l.lastArrival // preserve FIFO under jitter
		}
		l.lastArrival = arrival
	}
	l.k.AtArg(arrival, l.deliver, msg)
	if l.Dup > 0 && l.k.Rand().Float64() < l.Dup {
		extra := time.Duration(0)
		if l.Latency > 0 {
			extra = time.Duration(l.k.Rand().Int63n(int64(l.Latency) + 1))
		}
		l.k.AtArg(arrival+extra, l.deliver, msg)
		l.duplicated++
	}
	return true
}

// Stats returns the number of messages sent, delivered so far, and dropped.
func (l *Link) Stats() (sent, delivered, dropped int) {
	return l.sent, l.delivered, l.dropped
}

// AdvStats returns the adversarial-event counters: messages reordered,
// corrupted, and duplicated so far.
func (l *Link) AdvStats() (reordered, corrupted, duplicated int) {
	return l.reordered, l.corrupted, l.duplicated
}

// Duplex is a bidirectional channel built from two Links sharing latency
// characteristics. A2B carries messages from side A to side B; B2A the
// reverse.
type Duplex struct {
	A2B *Link
	B2A *Link
}

// NewDuplex creates a Duplex named name with symmetric base latency.
// Handlers may be nil at construction and set later via SetHandlers.
func NewDuplex(k *sched.Kernel, name string, latency time.Duration, toB, toA Handler) *Duplex {
	return &Duplex{
		A2B: NewLink(k, name+"/a2b", latency, toB),
		B2A: NewLink(k, name+"/b2a", latency, toA),
	}
}

// SetHandlers installs the two receive handlers. Useful when endpoints are
// constructed after the link.
func (d *Duplex) SetHandlers(toB, toA Handler) {
	d.A2B.handler = toB
	d.B2A.handler = toA
}

// SetDown partitions or heals both directions.
func (d *Duplex) SetDown(down bool) {
	d.A2B.SetDown(down)
	d.B2A.SetDown(down)
}

// SetLoss sets the loss probability in both directions.
func (d *Duplex) SetLoss(p float64) {
	d.A2B.Loss = p
	d.B2A.Loss = p
}

// SetJitter sets the jitter bound in both directions.
func (d *Duplex) SetJitter(j time.Duration) {
	d.A2B.Jitter = j
	d.B2A.Jitter = j
}

// SetReorder sets the reorder probability (and straggler span) in both
// directions.
func (d *Duplex) SetReorder(p float64, span time.Duration) {
	d.A2B.Reorder, d.A2B.ReorderSpan = p, span
	d.B2A.Reorder, d.B2A.ReorderSpan = p, span
}

// SetDup sets the duplication probability in both directions.
func (d *Duplex) SetDup(p float64) {
	d.A2B.Dup = p
	d.B2A.Dup = p
}

// SetCorrupt installs a corrupter with probability p in both directions.
func (d *Duplex) SetCorrupt(p float64, fn func(msg any) any) {
	d.A2B.Corrupt, d.A2B.Corrupter = p, fn
	d.B2A.Corrupt, d.B2A.Corrupter = p, fn
}
