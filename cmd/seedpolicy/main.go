// Command seedpolicy runs the decision-trace subsystem end to end: it
// traces Algorithm 1's decisions over the calibrated workload corpus,
// builds counterfactual reset-tier matrices for the mobility scenario
// classes, and searches the policy space (grid + evolutionary
// refinement) for a configuration that beats the paper's.
//
// Usage:
//
//	seedpolicy [-seed S] [-spec FILE] [-cells N] [-rounds R] [-topk K]
//	           [-mutants M] [-pins P] [-parallel W] [-trace off|decisions|full]
//	           [-selfcheck] [-json FILE]
//
// The corpus is the calibrated default workload (internal/workload)
// unless -spec points at a spec JSON. Only SEED-mode, non-user-action
// cells are scored: a policy cannot change legacy handling, and
// user-action cells cost every policy the same notice. -cells truncates
// the evaluation set (corpus order) to bound wall time; the
// counterfactual anchor cells are found in the full corpus regardless.
//
// -selfcheck replays the trace-determinism and counterfactual
// pin-identity contracts and exits non-zero if either fails: per-cell
// trace digests must be byte-identical at -parallel 1 and -parallel W,
// the paper policy's corpus score must be identical at both widths, and
// pinning a decision to its own baseline proposal must reproduce the
// baseline trace byte-for-byte.
//
// -json writes the BENCH_policy.json document: per-stage decision
// counts, the counterfactual matrices, and the search result (best
// found vs paper policy).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"github.com/seed5g/seed/internal/core"
	"github.com/seed5g/seed/internal/policy"
	"github.com/seed5g/seed/internal/runner"
	"github.com/seed5g/seed/internal/workload"
)

// selfCheck is the machine-readable determinism verdict.
type selfCheck struct {
	// TraceDeterministic: per-cell trace digests identical at width 1 and
	// width W.
	TraceDeterministic bool `json:"trace_deterministic"`
	// ScoreDeterministic: the paper policy's corpus score identical at
	// width 1 and width W.
	ScoreDeterministic bool `json:"score_deterministic"`
	// PinIdentity: every counterfactual matrix reproduced its baseline
	// when pinned to the baseline's own proposal.
	PinIdentity bool     `json:"pin_identity"`
	Digests     []string `json:"digests"`
}

// policyReport is the BENCH_policy.json document.
type policyReport struct {
	Seed        int64  `json:"seed"`
	Spec        string `json:"spec"`
	CorpusCells int    `json:"corpus_cells"`
	EvalCells   int    `json:"eval_cells"`
	Parallel    int    `json:"parallel"`
	TraceLevel  string `json:"trace_level"`
	// TraceCounts are the per-stage decision counts from the paper-policy
	// traced pass over the evaluation cells.
	TraceCounts []policy.StageCount `json:"trace_counts"`
	// Counterfactuals holds one reset-tier matrix per mobility scenario
	// class (handover-desync, tau-race).
	Counterfactuals []policy.Matrix     `json:"counterfactuals"`
	Search          policy.SearchResult `json:"search"`
	SelfCheck       *selfCheck          `json:"self_check,omitempty"`
	WallMS          float64             `json:"wall_ms"`
}

func main() {
	seedVal := flag.Int64("seed", 1, "corpus and search seed")
	specPath := flag.String("spec", "", "workload spec JSON (default: the calibrated paper-mix spec)")
	maxCells := flag.Int("cells", 48, "evaluation cells (first N eligible in corpus order; 0 = all)")
	rounds := flag.Int("rounds", 2, "evolutionary refinement rounds after the grid")
	topK := flag.Int("topk", 3, "survivors carried between rounds")
	mutants := flag.Int("mutants", 4, "mutants per survivor per round")
	pins := flag.Int("pins", 2, "decisions pinned per counterfactual matrix")
	parallel := flag.Int("parallel", 0, "worker goroutines (0 = GOMAXPROCS)")
	traceLevel := flag.String("trace", "full", "trace retention level for the counting pass (off|decisions|full)")
	check := flag.Bool("selfcheck", false, "verify trace determinism and pin identity; exit non-zero on failure")
	jsonOut := flag.String("json", "", "write the BENCH_policy.json document to this file (- for stdout)")
	flag.Parse()

	level, err := core.ParseTraceLevel(*traceLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sp := workload.DefaultSpec()
	if *specPath != "" {
		blob, err := os.ReadFile(*specPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spec: %v\n", err)
			os.Exit(1)
		}
		sp, err = workload.ParseSpec(blob)
		if err != nil {
			fmt.Fprintf(os.Stderr, "spec: %v\n", err)
			os.Exit(1)
		}
	}
	workers := *parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	pool := runner.New(workers)
	start := time.Now()

	all, err := workload.Compile(sp, *seedVal)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compile: %v\n", err)
		os.Exit(1)
	}
	cells := policy.EligibleCells(all, *maxCells)
	if len(cells) == 0 {
		fmt.Fprintln(os.Stderr, "corpus has no eligible cells (SEED-mode, non-user-action)")
		os.Exit(1)
	}
	report := policyReport{
		Seed: *seedVal, Spec: sp.Name, CorpusCells: len(all), EvalCells: len(cells),
		Parallel: workers, TraceLevel: level.String(),
	}
	fmt.Printf("corpus %q: %d cells compiled, %d eligible for evaluation\n", sp.Name, len(all), len(cells))

	// (a) Per-decision trace counts: the paper policy traced over the
	// evaluation cells.
	paper := policy.Paper()
	countLevel := level
	if countLevel == core.TraceOff {
		countLevel = core.TraceDecisions // counts need a tracer attached
	}
	paperScore, counts := policy.Evaluate(pool, sp, cells, paper, countLevel)
	report.TraceCounts = policy.SortedCounts(counts)
	fmt.Printf("paper policy: composite %.2fs over %d cells (%d decisions traced)\n",
		paperScore.Composite, paperScore.Cells, paperScore.TotalDecisions)
	for _, row := range report.TraceCounts {
		fmt.Printf("  %-22s %d\n", row.Stage, row.Count)
	}

	// (b) Counterfactual reset-tier matrices for the mobility classes.
	pinsOK := true
	for _, scenario := range []string{workload.ScenHandoverDesync, workload.ScenTAURace} {
		c, err := policy.FirstCellByScenario(all, scenario)
		if err != nil {
			fmt.Fprintf(os.Stderr, "counterfactual: %v\n", err)
			os.Exit(1)
		}
		m := policy.Counterfactual(pool, sp, c, paper, *pins)
		report.Counterfactuals = append(report.Counterfactuals, m)
		pinsOK = pinsOK && m.PinIdentity
		fmt.Printf("counterfactual %s (cell %d, %d decisions, pin-identity %v): baseline %.2fs\n",
			scenario, m.CellIndex, m.Decisions, m.PinIdentity, m.Baseline)
		for _, row := range m.Rows {
			best := row.Alternatives[0]
			for _, alt := range row.Alternatives[1:] {
				if alt.Composite < best.Composite {
					best = alt
				}
			}
			fmt.Printf("  seq %d (proposed %s): best alternative %s at %+.2fs\n",
				row.Seq, row.Proposed, best.Action, best.DeltaS)
		}
	}

	// (c) Policy search: grid + refinement, paper policy in the grid.
	cfg := policy.SearchConfig{
		Seed: *seedVal, Rounds: *rounds, TopK: *topK, Mutants: *mutants,
		Progress: func(s string) { fmt.Println("search:", s) },
	}
	report.Search = policy.Search(pool, sp, cells, cfg)
	fmt.Printf("best policy: composite %.2fs vs paper %.2fs (improvement %.2fs over %d evaluations)\n",
		report.Search.Best.Score.Composite, report.Search.Paper.Score.Composite,
		report.Search.ImprovementS, report.Search.Evaluated)
	fmt.Printf("  best: %s\n", report.Search.Best.Policy)

	if *check {
		report.SelfCheck = runSelfCheck(sp, cells, paper, paperScore, workers, pinsOK)
		ok := report.SelfCheck.TraceDeterministic && report.SelfCheck.ScoreDeterministic && report.SelfCheck.PinIdentity
		fmt.Printf("selfcheck: trace-deterministic %v, score-deterministic %v, pin-identity %v\n",
			report.SelfCheck.TraceDeterministic, report.SelfCheck.ScoreDeterministic, report.SelfCheck.PinIdentity)
		if !ok {
			writeReport(*jsonOut, &report, start)
			os.Exit(1)
		}
	}
	writeReport(*jsonOut, &report, start)
}

// runSelfCheck replays the determinism contracts at width 1 vs width W.
func runSelfCheck(sp *workload.Spec, cells []workload.Cell, paper policy.Policy, paperScore policy.Score, workers int, pinsOK bool) *selfCheck {
	probe := cells
	if len(probe) > 6 {
		probe = probe[:6]
	}
	digests := func(p *runner.Pool) []string {
		return runner.Map(p, len(probe), func(i int) string {
			_, evs := policy.TraceCell(sp, probe[i], paper, nil)
			return policy.Digest(evs)
		})
	}
	d1 := digests(runner.New(1))
	dW := digests(runner.New(workers))
	sc := &selfCheck{TraceDeterministic: true, PinIdentity: pinsOK, Digests: dW}
	for i := range d1 {
		if d1[i] != dW[i] {
			sc.TraceDeterministic = false
		}
	}
	seqScore, _ := policy.Evaluate(runner.New(1), sp, cells, paper, core.TraceDecisions)
	sc.ScoreDeterministic = seqScore == paperScore
	return sc
}

func writeReport(path string, report *policyReport, start time.Time) {
	report.WallMS = float64(time.Since(start)) / float64(time.Millisecond)
	if path == "" {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
	blob = append(blob, '\n')
	if path == "-" {
		os.Stdout.Write(blob)
		return
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "json: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("[report written to %s]\n", path)
}
