package modem

import (
	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/nas"
)

// This file implements the legacy failure handling the paper measures in
// §3.2: the modem obtains standardized causes from reject messages but
// does not use them for diagnosis. It either aborts or retries blindly on
// timers, resending outdated identities and configurations, which produces
// the repeated failures and long disruptions of Figure 2.

func (m *Modem) onT3510Expiry() {
	if m.state != StateRegistering {
		return
	}
	m.legacyRegistrationFailure(0) // timeout: no cause available
}

func (m *Modem) handleRegistrationReject(rej *nas.RegistrationReject) {
	m.cancelRegTimer()
	m.reportReject(nas.EPD5GMM, uint8(rej.Cause))
	m.legacyRegistrationFailure(uint8(rej.Cause))
}

// legacyRegistrationFailure schedules the blind retry. The only cause
// sensitivity real modems exhibit is the abnormal-case immediate retry for
// transient conditions; everything else waits T3511, and after
// MaxRegAttempts the long T3502 backoff kicks in (TS 24.501 §5.5.1.2.7).
func (m *Modem) legacyRegistrationFailure(code uint8) {
	if m.state == StateOff || m.state == StateBooting {
		return
	}
	m.setState(StateDeregistered)
	// Leaving REGISTERED aborts any in-flight service-request resume: the
	// queued uplink would otherwise reference sessions of a dead
	// registration (TS 24.501 §5.6.1.7 aborts the procedure on lower-layer
	// failure).
	m.resuming = false
	m.pendingPkts = nil
	m.regAttempts++

	if m.regAttempts > m.cfg.MaxRegAttempts {
		// Attempt counter exhausted: wait T3502, then start over. The
		// spec-compliant path also invalidates the GUTI here, which is
		// what finally unsticks identity-desync failures.
		m.regAttempts = 0
		if m.specIdentityFallback {
			m.guti = ""
		}
		m.regTimer = m.k.After(m.cfg.T3502, m.t3502Fn)
		return
	}

	wait := m.cfg.T3511
	if info, okc := cause.Lookup(cause.MM(cause.Code(code))); okc && info.Transient {
		wait = m.cfg.TransientRetryWait
	}
	m.regTimer = m.k.After(wait, m.attachFn)
}

func (m *Modem) onT3580Expiry(s *Session) {
	if m.sessions[s.ID] != s || s.Active {
		return
	}
	m.legacySessionFailure(s, 0)
}

func (m *Modem) handleSessionReject(rej *nas.PDUSessionEstablishmentReject) {
	s, okS := m.sessions[rej.PDUSessionID]
	if !okS {
		return
	}
	s.timer.Stop()
	m.reportReject(nas.EPD5GSM, uint8(rej.Cause))
	// The reject may carry a suggested DNN (SEED infra extension); the
	// legacy modem ignores it, as §3.2 observes.
	m.legacySessionFailure(s, uint8(rej.Cause))
}

// legacySessionFailure retries session establishment with the *same*
// cached DNN (the outdated-APN loop of §3.2), escalating to a full
// reattach after MaxSessAttempts — which still reuses the stale DNN, so
// config-related failures repeat until something reloads the modem.
func (m *Modem) legacySessionFailure(s *Session, code uint8) {
	s.attempts++
	if s.attempts > m.cfg.MaxSessAttempts {
		s.attempts = 0
		delete(m.sessions, s.ID)
		// Escalate: reattach, which re-runs registration and then
		// re-establishes the default session from the cached profile.
		m.Reattach()
		return
	}
	wait := m.cfg.T3580
	if info, okc := cause.Lookup(cause.SM(cause.Code(code))); okc && info.Transient {
		wait = m.cfg.TransientRetryWait
	}
	s.timer = m.k.AfterArg(wait, m.sessRetry, s)
}
