// Trace analysis: the §3 study in miniature. Synthesizes the failure
// corpus with the published Table 1 statistics, prints the breakdown,
// then replays a sample of the control- and data-plane failure cases with
// legacy (modem + Android) handling only, reproducing the Figure 2
// disruption CDFs that motivate SEED.
package main

import (
	"fmt"

	seed "github.com/seed5g/seed"
)

func main() {
	ds := seed.GenerateDataset(1)
	fmt.Print(ds.RenderTable1())
	fmt.Println()

	fmt.Println("Replaying failure cases with legacy handling (Figure 2)...")
	fig2 := seed.ExperimentFigure2(ds, 80, 1)
	fmt.Print(fig2.Render())
	fmt.Println()

	fmt.Println("Reading the CDF the way §3.2 does:")
	fmt.Printf("  - only ~%.0f%% of control-plane failures recover within 2 s;\n",
		100*fractionAt(fig2.Control, 2))
	fmt.Printf("  - ~%.0f%% within 10 s — the rest wait out T3511/T3502 timers;\n",
		100*fractionAt(fig2.Control, 10))
	fmt.Printf("  - only ~%.0f%% of data-plane failures recover within 10 s, and\n",
		100*fractionAt(fig2.Data, 10))
	fmt.Println("    half need minutes: blind retries resend the outdated config until")
	fmt.Println("    Android's ladder finally restarts the modem.")
}

func fractionAt(pts []seed.CDFPoint, x float64) float64 {
	f := 0.0
	for _, p := range pts {
		if p.Seconds <= x {
			f = p.Fraction
		}
	}
	return f
}
