// Package crypto5g implements the cryptographic primitives SEED relies on,
// exactly as the paper's prototype does: 128-EEA2 confidentiality and
// 128-EIA2 integrity (TS 33.401 Annex B, i.e. AES-CTR and AES-CMAC), the
// Milenage authentication-and-key-agreement functions f1–f5* (TS 35.206)
// used for 5G-AKA between SIM and core, and a counter-protected secure
// envelope that SEED wraps its diagnosis payloads in before embedding them
// in AUTH or DNN fields.
package crypto5g

import (
	"crypto/aes"
	"crypto/subtle"
	"fmt"
)

// CMAC computes the AES-CMAC (RFC 4493 / NIST SP 800-38B) of msg under the
// 16-byte key. The returned tag is 16 bytes.
func CMAC(key, msg []byte) ([16]byte, error) {
	var tag [16]byte
	block, err := aes.NewCipher(key)
	if err != nil {
		return tag, fmt.Errorf("crypto5g: cmac key: %w", err)
	}

	// Subkey generation.
	var l [16]byte
	block.Encrypt(l[:], l[:])
	k1 := dbl(l)
	k2 := dbl(k1)

	n := (len(msg) + 15) / 16 // number of blocks
	var last [16]byte
	complete := n > 0 && len(msg)%16 == 0
	if n == 0 {
		n = 1
	}
	if complete {
		for i := 0; i < 16; i++ {
			last[i] = msg[(n-1)*16+i] ^ k1[i]
		}
	} else {
		rem := msg[(n-1)*16:]
		copy(last[:], rem)
		last[len(rem)] = 0x80
		for i := 0; i < 16; i++ {
			last[i] ^= k2[i]
		}
	}

	var x [16]byte
	for i := 0; i < n-1; i++ {
		for j := 0; j < 16; j++ {
			x[j] ^= msg[i*16+j]
		}
		block.Encrypt(x[:], x[:])
	}
	for j := 0; j < 16; j++ {
		x[j] ^= last[j]
	}
	block.Encrypt(tag[:], x[:])
	return tag, nil
}

// dbl doubles a value in GF(2^128) per RFC 4493 subkey generation.
func dbl(in [16]byte) [16]byte {
	var out [16]byte
	carry := byte(0)
	for i := 15; i >= 0; i-- {
		out[i] = in[i]<<1 | carry
		carry = in[i] >> 7
	}
	if carry != 0 {
		out[15] ^= 0x87
	}
	return out
}

// ConstantTimeEqual compares two MACs without leaking timing.
func ConstantTimeEqual(a, b []byte) bool {
	return len(a) == len(b) && subtle.ConstantTimeCompare(a, b) == 1
}
