// Command seedbench regenerates the tables and figures of the SEED paper's
// evaluation section (§7) on the emulated testbed and prints them as text.
//
// Usage:
//
//	seedbench [-exp all|table1|table2|table3|table4|table5|figure2|figure3|
//	           figure11a|figure11b|figure12|figure13|coverage|learning]
//	          [-samples N] [-seed S]
//
// Everything runs on the virtual clock: regenerating the full evaluation
// takes seconds of wall time.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	seed "github.com/seed5g/seed"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..5, figure2/3/11a/11b/12/13, coverage, learning)")
	samples := flag.Int("samples", 100, "replayed failure cases per class for the dataset-driven experiments")
	seedVal := flag.Int64("seed", 1, "simulation seed")
	cdfOut := flag.String("cdf", "", "also write the Figure 2 CDFs as CSV to this file")
	flag.Parse()

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fn()
		fmt.Printf("  [%s regenerated in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	ds := seed.GenerateDataset(*seedVal)

	run("table1", func() { fmt.Print(ds.RenderTable1()) })
	run("table2", func() { fmt.Print(table2()) })
	run("table3", func() { fmt.Print(table3()) })
	run("figure2", func() {
		res := seed.ExperimentFigure2(ds, *samples, *seedVal)
		fmt.Print(res.Render())
		if *cdfOut != "" {
			if err := writeCDFCSV(*cdfOut, res); err != nil {
				fmt.Fprintf(os.Stderr, "cdf: %v\n", err)
			} else {
				fmt.Printf("  [CDF points written to %s]\n", *cdfOut)
			}
		}
	})
	run("figure3", func() { fmt.Print(seed.ExperimentFigure3(max(8, *samples/10), *seedVal).Render()) })
	run("table4", func() { fmt.Print(seed.ExperimentTable4(ds, *samples, *seedVal).Render()) })
	run("table5", func() { fmt.Print(seed.ExperimentTable5(3, *seedVal).Render()) })
	run("figure11a", func() { fmt.Print(seed.ExperimentFigure11a(*seedVal).Render()) })
	run("figure11b", func() { fmt.Print(seed.ExperimentFigure11b(*seedVal).Render()) })
	run("figure12", func() { fmt.Print(seed.ExperimentFigure12(50, *seedVal).Render()) })
	run("figure13", func() { fmt.Print(seed.ExperimentFigure13(*seedVal).Render()) })
	run("coverage", func() { fmt.Print(seed.ExperimentCoverage(ds, *samples, *seedVal).Render()) })
	run("learning", func() { fmt.Print(seed.ExperimentLearning(6, 4, 50, *seedVal).Render()) })

	if *exp != "all" {
		known := "table1 table2 table3 table4 table5 figure2 figure3 figure11a figure11b figure12 figure13 coverage learning"
		if !strings.Contains(known, *exp) {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: all %s)\n", *exp, known)
			os.Exit(2)
		}
	}
}

// writeCDFCSV dumps the Figure 2 curves as plane,seconds,fraction rows.
func writeCDFCSV(path string, res seed.Figure2Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "plane,seconds,fraction")
	for _, p := range res.Control {
		fmt.Fprintf(f, "control,%.3f,%.4f\n", p.Seconds, p.Fraction)
	}
	for _, p := range res.Data {
		fmt.Fprintf(f, "data,%.3f,%.4f\n", p.Seconds, p.Fraction)
	}
	return nil
}

// table2 reproduces the qualitative solution comparison (static).
func table2() string {
	rows := [][]string{
		{"Solutions", "Detection&Diag", "Config recovery", "Non-config recovery", "User-action"},
		{"Modem-based", "device-side only", "not supported", "timer-based retry", "not supported"},
		{"OS-based", "device-side only", "not supported", "layer-by-layer retry", "not supported"},
		{"App-based", "device-side only", "not supported", "transport reconnect", "not supported"},
		{"Infra-based", "infra-side only", "infra-side updates", "wait for device retry", "notification"},
		{"SEED", "both sides", "both-side updates", "multi-tier reset", "notification"},
	}
	var b strings.Builder
	b.WriteString("Table 2: comparison of 5G failure diagnosis/handling solutions\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %-18s %-20s %-22s %-14s\n", r[0], r[1], r[2], r[3], r[4])
	}
	return b.String()
}

// table3 prints the live decision table (the SEED applet's handling map).
func table3() string {
	rows := [][]string{
		{"Diagnosis Class", "SEED-U (no root)", "SEED-R (root)"},
		{"Control-plane causes", "A1 SIM profile reload", "B1 modem reset"},
		{"Control-plane causes w/ config", "A2+A1 config update & reload", "B2 reattach with update"},
		{"Data-plane causes", "A1 SIM profile reload", "B3 data-plane reset"},
		{"Data-plane causes w/ config", "A3 config update", "B3 data-plane modification"},
		{"Data delivery (app/OS report)", "A3 config update", "B3 reset / modification"},
	}
	var b strings.Builder
	b.WriteString("Table 3: failure handling decisions with diagnosis results\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s %-30s %-28s\n", r[0], r[1], r[2])
	}
	return b.String()
}
