package seed

import (
	"sync/atomic"
	"time"

	"github.com/seed5g/seed/internal/metrics"
	"github.com/seed5g/seed/internal/runner"
	"github.com/seed5g/seed/internal/sched"
)

// The experiment suite fans independent scenario cells — each a fresh
// Testbed on its own single-threaded kernel — across a process-wide
// worker pool. Cell seeds derive from sched.DeriveSeed(rootSeed, cellKey)
// where the key identifies the underlying case or trial (arms that
// compare schemes on the same case share the key, preserving the paired
// comparisons the shape assertions rely on). Shard-local statistics merge
// through the commutative metrics.Series.Merge, so every experiment's
// result is bit-for-bit identical at any parallelism, including 1.

// execPool holds the pool experiments submit cells to.
var execPool atomic.Pointer[runner.Pool]

func init() { execPool.Store(runner.New(0)) }

// SetParallelism sets how many worker goroutines the experiment runners,
// batch replays, and cmd binaries fan scenario cells across. n <= 0
// restores the default (GOMAXPROCS). Results are identical for every
// setting; parallelism only changes wall-clock time.
func SetParallelism(n int) { execPool.Store(runner.New(n)) }

// Parallelism returns the current experiment worker count.
func Parallelism() int { return execPool.Load().Workers() }

func pool() *runner.Pool { return execPool.Load() }

// ReplayManagementBatch replays every case under mode, fanning the
// independent replays across the experiment worker pool. Case i runs on
// seed sched.DeriveSeed(rootSeed, i); results come back in case order.
func ReplayManagementBatch(cases []FailureCase, mode Mode, rootSeed int64) []ReplayResult {
	return runner.Map(pool(), len(cases), func(i int) ReplayResult {
		return ReplayManagement(cases[i], mode, sched.DeriveSeed(rootSeed, uint64(i)))
	})
}

// ReplayDeliveryBatch replays every delivery case under mode across the
// worker pool, case i on seed sched.DeriveSeed(rootSeed, i).
func ReplayDeliveryBatch(cases []DeliveryCase, mode Mode, rootSeed int64) []DeliveryReplayResult {
	return runner.Map(pool(), len(cases), func(i int) DeliveryReplayResult {
		return ReplayDelivery(cases[i], mode, sched.DeriveSeed(rootSeed, uint64(i)))
	})
}

// mapCells fans n independent cells across the pool, returning the
// results in cell order.
func mapCells[T any](n int, fn func(i int) T) []T {
	return runner.Map(pool(), n, fn)
}

// cellKey namespaces per-case seed derivation so distinct cell families
// of one experiment never collide while arms that replay the same case
// under different schemes still share a seed.
func cellKey(family uint64, index int) uint64 {
	return family<<32 | uint64(uint32(index))
}

// shardAcc is the order-insensitive accumulator scenario cells fold their
// outcomes into: named sample series plus named counters. Merging is
// commutative (series are multisets, counters sum), which is what lets
// worker-local shards combine into a deterministic aggregate.
type shardAcc struct {
	series map[string]*metrics.Series
	counts map[string]int
}

func newShardAcc() *shardAcc {
	return &shardAcc{series: map[string]*metrics.Series{}, counts: map[string]int{}}
}

func (a *shardAcc) add(group string, d time.Duration) {
	s := a.series[group]
	if s == nil {
		s = metrics.NewSeries(group)
		a.series[group] = s
	}
	s.Add(d)
}

func (a *shardAcc) count(key string) { a.counts[key]++ }

// countN adds n to a named counter (merged handover/context-loss totals
// from per-cell testbeds).
func (a *shardAcc) countN(key string, n int) { a.counts[key] += n }

func (a *shardAcc) merge(src *shardAcc) {
	for g, s := range src.series {
		if dst := a.series[g]; dst != nil {
			dst.Merge(s)
		} else {
			a.series[g] = s
		}
	}
	for k, v := range src.counts {
		a.counts[k] += v
	}
}

// get returns the group's series, or an empty one when no cell reported.
func (a *shardAcc) get(group string) *metrics.Series {
	if s := a.series[group]; s != nil {
		return s
	}
	return metrics.NewSeries(group)
}

// collectCells fans n cells across the pool into a merged shardAcc.
func collectCells(n int, cell func(i int, acc *shardAcc)) *shardAcc {
	return runner.Collect(pool(), n, newShardAcc, cell, (*shardAcc).merge)
}
