// Command seedfuzz drives adversarial protocol-fuzzing campaigns against
// the emulated SEED testbed (internal/adversary). Each case boots a full
// device+core stack, records its legitimate NAS/APDU/fleet traffic,
// re-injects seed-derived structured mutations, and asserts the invariant
// set: no panic, legal final modem state, all timers drained, no recovery
// tier above the device's privilege, tampered envelopes rejected.
//
// Campaigns are deterministic: the same -seed yields bit-identical
// summaries at any -parallel (pass -selfcheck to prove it in-run).
// Violating cases are minimized by greedy mutation-stripping and, with
// -corpus, written as JSON regression cases replayed by
// `go test ./internal/adversary/`.
//
// Usage:
//
//	seedfuzz -seed 1 -n 10000 -parallel 8 -json summary.json
//	seedfuzz -seed 1 -n 200 -selfcheck
//	seedfuzz -emit-nas internal/nas/testdata/fuzz/FuzzUnmarshal \
//	         -emit-apdu internal/sim/testdata/fuzz/FuzzParseCommand
//
// Exit status: 0 clean campaign, 1 invariant violations found, 2 internal
// error (including a failed determinism self-check).
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/seed5g/seed/internal/adversary"
)

func main() {
	var (
		rootSeed  = flag.Int64("seed", 1, "campaign root seed")
		n         = flag.Int("n", 1000, "number of cases")
		parallel  = flag.Int("parallel", 0, "worker count (<=0: GOMAXPROCS)")
		maxMut    = flag.Int("maxmut", 4, "maximum mutations per case")
		jsonOut   = flag.String("json", "", "write summary JSON to file ('-' for stdout)")
		selfcheck = flag.Bool("selfcheck", false, "re-run sequentially and require byte-identical summaries")
		corpusDir = flag.String("corpus", "", "write minimized violating cases as JSON into this directory")
		emitNAS   = flag.String("emit-nas", "", "record clean traces and write a NAS go-fuzz seed corpus here")
		emitAPDU  = flag.String("emit-apdu", "", "record clean traces and write an APDU go-fuzz seed corpus here")
	)
	flag.Parse()

	if *emitNAS != "" || *emitAPDU != "" {
		emitCorpora(*rootSeed, *emitNAS, *emitAPDU)
		return
	}

	cfg := adversary.Config{RootSeed: *rootSeed, Cases: *n, Workers: *parallel, MaxMutations: *maxMut}
	results, summary := adversary.Run(cfg)

	if *selfcheck {
		seqCfg := cfg
		seqCfg.Workers = 1
		_, seqSummary := adversary.Run(seqCfg)
		if !bytes.Equal(summary.JSON(), seqSummary.JSON()) {
			fmt.Fprintf(os.Stderr, "seedfuzz: DETERMINISM FAILURE: parallel summary differs from sequential\n")
			os.Exit(2)
		}
		fmt.Printf("selfcheck: parallel (%d workers) and sequential summaries byte-identical\n", cfg.Workers)
	}

	if *jsonOut == "-" {
		os.Stdout.Write(summary.JSON())
	} else if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, summary.JSON(), 0o644); err != nil {
			fatal("writing %s: %v", *jsonOut, err)
		}
	}

	fmt.Printf("campaign: seed=%d cases=%d mutations applied=%d skipped=%d pools nas-down=%d nas-up=%d apdu=%d fleet=%d\n",
		summary.RootSeed, summary.Cases, summary.Applied, summary.Skipped,
		summary.PoolNASDown, summary.PoolNASUp, summary.PoolAPDU, summary.PoolFleet)

	if summary.Violations == 0 {
		fmt.Println("invariants: all held")
		return
	}

	fmt.Printf("invariants: %d violations in %d cases\n", summary.Violations, len(summary.ViolatingCases))
	for _, row := range summary.ByInvariant {
		fmt.Printf("  %-16s %d\n", row.Invariant, row.Count)
	}
	for _, idx := range summary.ViolatingCases {
		r := results[idx]
		min, minRes := adversary.Minimize(r.Case)
		fmt.Printf("case %d (%s, stimulus %s): minimized %d -> %d mutations\n",
			idx, r.Case.ModeName(), adversary.StimulusName(r.Case.Stimulus),
			len(r.Case.Mutations), len(min.Mutations))
		for _, v := range minRes.Violations {
			fmt.Printf("  [%s] %s\n", v.Invariant, v.Detail)
		}
		for _, m := range min.Mutations {
			fmt.Printf("  mutation: %s\n", m)
		}
		if *corpusDir != "" {
			if err := os.MkdirAll(*corpusDir, 0o755); err != nil {
				fatal("creating %s: %v", *corpusDir, err)
			}
			path := filepath.Join(*corpusDir, fmt.Sprintf("case-%d-%d.json", summary.RootSeed, idx))
			if err := adversary.SaveCase(path, min); err != nil {
				fatal("writing %s: %v", path, err)
			}
			fmt.Printf("  saved %s\n", path)
		}
	}
	os.Exit(1)
}

// emitCorpora records clean testbed traces and writes them as native
// `go test fuzz v1` seed files for the codec fuzz targets. Several
// scenario seeds are recorded so the corpora cover identity variation
// (GUTIs, counters) on top of the shared message shapes; files are named
// by content hash, so re-emission is idempotent.
func emitCorpora(rootSeed int64, nasDir, apduDir string) {
	var nasFrames, apdus [][]byte
	for off := int64(0); off < 4; off++ {
		nf, af := adversary.RecordTraces(rootSeed + off)
		nasFrames = append(nasFrames, nf...)
		apdus = append(apdus, af...)
	}
	if nasDir != "" {
		n, err := adversary.WriteGoFuzzCorpus(nasDir, nasFrames)
		if err != nil {
			fatal("emitting NAS corpus: %v", err)
		}
		fmt.Printf("wrote %d NAS seed inputs to %s\n", n, nasDir)
	}
	if apduDir != "" {
		n, err := adversary.WriteGoFuzzCorpus(apduDir, apdus)
		if err != nil {
			fatal("emitting APDU corpus: %v", err)
		}
		fmt.Printf("wrote %d APDU seed inputs to %s\n", n, apduDir)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "seedfuzz: "+format+"\n", args...)
	os.Exit(2)
}
