// Command seedload is the fleet load generator: it drives N simulated
// SEED devices through the full upload → aggregate → model-push round
// trip against a running seedfleetd, measures throughput and tail
// latency, and verifies the networked aggregate against an in-process
// sequential baseline byte-for-byte.
//
// Usage:
//
//	seedload [-addr HOST:PORT] [-devices N] [-workers N] [-conns N]
//	         [-records N] [-reports N] [-causes N] [-seed S]
//	         [-spec FILE] [-timescale F]
//	         [-master HEX32] [-json FILE] [-verify=false] [-quiet]
//
// Each device's learning records are generated deterministically from
// (-seed, device index) via the same splitmix derivation the parallel
// scenario runner uses, so the expected aggregate model is computable
// without the network: seedload folds every device's records into a
// local core.Learner (the in-process sequential baseline), pulls the
// server's merged model after the drive, and compares the two canonical
// serializations. Any lost upload or model divergence exits non-zero.
//
// -workers is the client-shard count: devices are partitioned across
// worker goroutines, each performing synchronous round trips through the
// shared connection pool. p50/p95/p99 latencies cover the whole exchange
// including backoff waits — what a device experiences under backpressure.
//
// -spec FILE paces uploads by a workload spec's compiled arrival process
// (cmd/seedwl's schema): device i's upload starts at the i-th arrival
// offset, compressed by -timescale real-seconds-per-spec-second, so
// diurnal curves and signaling-storm bursts shape the cluster load.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/seed5g/seed"
	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/core"
	"github.com/seed5g/seed/internal/fleet"
	"github.com/seed5g/seed/internal/fleet/cluster"
	"github.com/seed5g/seed/internal/metrics"
	"github.com/seed5g/seed/internal/report"
	"github.com/seed5g/seed/internal/sched"
	"github.com/seed5g/seed/internal/workload"
)

// fleetAPI is the surface the drive loop needs. The single-node Client
// satisfies it directly; cluster mode wraps a ClusterClient so the same
// loop drives a sharded fleet tier unchanged.
type fleetAPI interface {
	UploadRecords(imsi string, sealed []byte) error
	Report(imsi string, sealed []byte) error
	Query(imsi string, c cause.Cause) ([]byte, error)
	FetchModel() ([]byte, error)
	FetchStats() (fleet.ServerStats, error)
	Retries() uint64
	Redials() uint64
	Latency(op string) *metrics.Series
}

// clusterAdapter adapts ClusterClient's context-first surface to fleetAPI
// and keeps its own cross-node latency series (what a device experiences,
// redirects and failovers included).
type clusterAdapter struct {
	cc    *fleet.ClusterClient
	latMu sync.Mutex
	lat   map[string]*metrics.Series
}

func newClusterAdapter(cc *fleet.ClusterClient) *clusterAdapter {
	return &clusterAdapter{cc: cc, lat: map[string]*metrics.Series{}}
}

func (a *clusterAdapter) record(op string, start time.Time) {
	a.latMu.Lock()
	s := a.lat[op]
	if s == nil {
		s = metrics.NewSeries(op)
		a.lat[op] = s
	}
	s.Add(time.Since(start))
	a.latMu.Unlock()
}

func (a *clusterAdapter) UploadRecords(imsi string, sealed []byte) error {
	start := time.Now()
	err := a.cc.UploadRecords(context.Background(), imsi, sealed)
	if err == nil {
		a.record("upload", start)
	}
	return err
}

func (a *clusterAdapter) Report(imsi string, sealed []byte) error {
	start := time.Now()
	err := a.cc.Report(context.Background(), imsi, sealed)
	if err == nil {
		a.record("report", start)
	}
	return err
}

func (a *clusterAdapter) Query(imsi string, c cause.Cause) ([]byte, error) {
	start := time.Now()
	p, err := a.cc.Query(context.Background(), imsi, c)
	if err == nil {
		a.record("query", start)
	}
	return p, err
}

func (a *clusterAdapter) FetchModel() ([]byte, error) {
	return a.cc.FetchClusterModel(context.Background())
}

// FetchStats sums the counters across members (per-node detail is the
// chaos driver's business).
func (a *clusterAdapter) FetchStats() (fleet.ServerStats, error) {
	stats, errs := a.cc.FetchStatsAll(context.Background())
	for id, err := range errs {
		return fleet.ServerStats{}, fmt.Errorf("node %s: %w", id, err)
	}
	var sum fleet.ServerStats
	for _, st := range stats {
		sum.Conns += st.Conns
		sum.Uploads += st.Uploads
		sum.Duplicates += st.Duplicates
		sum.RecordRows += st.RecordRows
		sum.Reports += st.Reports
		sum.Queries += st.Queries
		sum.Suggestions += st.Suggestions
		sum.Backpressured += st.Backpressured
		sum.Errors += st.Errors
		sum.Dropped += st.Dropped
		sum.WrongShard += st.WrongShard
		sum.JournalRecords += st.JournalRecords
		sum.JournalSyncs += st.JournalSyncs
		sum.Compactions += st.Compactions
		sum.ReplayedRecords += st.ReplayedRecords
		if st.Epoch > sum.Epoch {
			sum.Epoch = st.Epoch
		}
	}
	return sum, nil
}

func (a *clusterAdapter) eachNodeClient(fn func(id string, cl *fleet.Client)) {
	for _, n := range a.cc.Map().Nodes() {
		if cl := a.cc.NodeLatency(n.ID); cl != nil {
			fn(n.ID, cl)
		}
	}
}

func (a *clusterAdapter) Retries() uint64 {
	var sum uint64
	a.eachNodeClient(func(_ string, cl *fleet.Client) { sum += cl.Retries() })
	return sum
}

func (a *clusterAdapter) Redials() uint64 {
	var sum uint64
	a.eachNodeClient(func(_ string, cl *fleet.Client) { sum += cl.Redials() })
	return sum
}

func (a *clusterAdapter) Latency(op string) *metrics.Series {
	a.latMu.Lock()
	defer a.latMu.Unlock()
	return a.lat[op]
}

// result is the machine-readable run record (-json).
type result struct {
	Devices       int     `json:"devices"`
	Workers       int     `json:"workers"`
	Conns         int     `json:"conns"`
	Records       int     `json:"records_per_device"`
	Reports       int     `json:"reports_per_device"`
	Testbed       int     `json:"testbed_devices"`
	PacedBySpec   string  `json:"paced_by_spec,omitempty"`
	Seed          int64   `json:"seed"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	WallMS        float64 `json:"wall_ms"`
	UploadsPerSec float64 `json:"uploads_per_sec"`
	OpsPerSec     float64 `json:"ops_per_sec"`
	Lost          int64   `json:"lost"`
	Retries       uint64  `json:"client_retries"`
	Redials       uint64  `json:"client_redials"`
	ModelMatch    *bool   `json:"model_match,omitempty"`
	ModelBytes    int     `json:"model_bytes"`
	Suggestions   int64   `json:"suggestions_received"`

	UploadP50MS float64 `json:"upload_p50_ms"`
	UploadP95MS float64 `json:"upload_p95_ms"`
	UploadP99MS float64 `json:"upload_p99_ms"`
	QueryP50MS  float64 `json:"query_p50_ms"`
	QueryP95MS  float64 `json:"query_p95_ms"`
	QueryP99MS  float64 `json:"query_p99_ms"`

	Server fleet.ServerStats `json:"server"`
}

// deviceLoad is one device's deterministic workload.
type deviceLoad struct {
	imsi    string
	records map[cause.Cause]map[core.ActionID]int
	reports []report.FailureReport
	query   cause.Cause
}

// genDevice derives device i's workload from the root seed. Causes are
// operator-customized codes (the §5.3 unknown-failure space) spread over
// both planes; actions follow the trial order.
func genDevice(rootSeed int64, i, records, reports, causes int) deviceLoad {
	rng := rand.New(rand.NewSource(sched.DeriveSeed(rootSeed, uint64(i))))
	d := deviceLoad{
		imsi:    fmt.Sprintf("310170%09d", i+1),
		records: make(map[cause.Cause]map[core.ActionID]int),
	}
	for r := 0; r < records; r++ {
		c := cause.Cause{Plane: cause.ControlPlane, Code: cause.Code(150 + rng.Intn(causes))}
		if rng.Intn(2) == 1 {
			c.Plane = cause.DataPlane
		}
		a := core.LearningOrder[rng.Intn(len(core.LearningOrder))]
		if d.records[c] == nil {
			d.records[c] = make(map[core.ActionID]int)
		}
		d.records[c][a] += 1 + rng.Intn(3)
		d.query = c
	}
	for r := 0; r < reports; r++ {
		switch rng.Intn(3) {
		case 0:
			d.reports = append(d.reports, report.FailureReport{
				Type: report.FailDNS, Direction: report.DirBoth, Domain: "fleet.example.com",
			})
		case 1:
			d.reports = append(d.reports, report.FailureReport{
				Type: report.FailTCP, Direction: report.DirUplink,
				Addr: [4]byte{10, 0, 0, byte(rng.Intn(256))}, Port: 443,
			})
		default:
			d.reports = append(d.reports, report.FailureReport{
				Type: report.FailUDP, Direction: report.DirDownlink,
				Addr: [4]byte{10, 0, 1, byte(rng.Intn(256))}, Port: 53,
			})
		}
	}
	if d.query == (cause.Cause{}) {
		d.query = cause.MM(150)
	}
	return d
}

// simProto boots one SEED-R device to connected steady state; each
// testbed-derived fleet device clones it instead of re-running the boot.
var simProto = seed.NewProto(func(tb *seed.Testbed) *seed.Device {
	d := tb.NewDevice(seed.ModeSEEDR)
	d.Start()
	tb.RunUntil(d.Connected, time.Minute)
	return d
})

// testbedDevice derives device i's learning records by driving a cloned
// SEED testbed through an operator-customized failure: the rows the SIM
// applet actually learned and uploaded become the device's fleet payload
// (the synthetic genDevice rows are replaced; reports stay synthetic).
// The same rows feed the in-process baseline, so -verify still holds
// byte-for-byte. Returns false when the run produced no records.
func testbedDevice(ld *deviceLoad, rootSeed int64, i, causes int) bool {
	tb, d, put := simProto.Cell(sched.DeriveSeedN(rootSeed, uint64(i), 2))
	defer put()
	if !d.Connected() {
		return false
	}
	var blob []byte
	d.Core().CApp.SetRecordSink(func(b []byte) {
		blob = append(blob[:0], b...)
	})

	code := uint8(150 + i%causes)
	c := cause.MM(cause.Code(code))
	opts := seed.InjectOpts{Count: -1, HealAfter: 30 * time.Second}
	if i%2 == 0 {
		tb.InjectControlFailure(d, code, opts)
		tb.SimulateMobility(d)
	} else {
		c = cause.SM(cause.Code(code))
		tb.InjectDataFailure(d, code, opts)
		tb.ReleaseInternetSessions(d)
		// The release is asynchronous: wait for the failure to manifest
		// before watching for recovery.
		tb.RunUntil(func() bool { return !d.Connected() }, 30*time.Second)
	}
	// Let the applet run its trial sequence and the heal land; then pull
	// the learned records through the OTA upload leg.
	tb.RunUntil(d.Connected, 10*time.Minute)
	tb.Advance(15 * time.Second)
	d.Core().CApp.UploadRecords()
	tb.Advance(time.Second)

	rows, err := core.UnmarshalRecords(blob)
	if err != nil || len(rows) == 0 {
		return false
	}
	ld.records = rows
	ld.query = c
	return true
}

func ms(s *metrics.Series, p float64) float64 {
	if s == nil {
		return 0
	}
	return float64(s.Percentile(p)) / float64(time.Millisecond)
}

func latSummary(api fleetAPI, op string) string {
	s := api.Latency(op)
	if s == nil || s.Len() == 0 {
		return op + ": no samples"
	}
	return fmt.Sprintf("%s: n=%d p50=%.2fms p95=%.2fms p99=%.2fms",
		op, s.Len(), ms(s, 50), ms(s, 95), ms(s, 99))
}

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7316", "seedfleetd address (single-node mode)")
		clusterSpec = flag.String("cluster", "", "drive a cluster instead: members as id=host:port,...")
		epoch       = flag.Uint64("epoch", 1, "bootstrap shard-map epoch (with -cluster)")
		devices     = flag.Int("devices", 1000, "simulated device count")
		workers     = flag.Int("workers", 4, "client shards (worker goroutines)")
		conns       = flag.Int("conns", 0, "connection pool size (default: workers)")
		records     = flag.Int("records", 4, "learning-record rows per device")
		reports     = flag.Int("reports", 1, "failure reports per device")
		causes      = flag.Int("causes", 12, "distinct customized causes per plane")
		testbed     = flag.Int("testbed", 32, "derive the first N devices' records from real cloned-testbed SEED runs (0: all synthetic)")
		wlSpec      = flag.String("spec", "", "pace uploads by this workload spec's arrival process (see cmd/seedwl) instead of max rate")
		timescale   = flag.Float64("timescale", 0.001, "real seconds per spec second with -spec pacing")
		seedVal     = flag.Int64("seed", 1, "workload seed")
		master      = flag.String("master", "", "fleet master key, 32 hex digits (default: built-in dev key)")
		jsonOut     = flag.String("json", "", "write machine-readable results to FILE (\"-\" for stdout)")
		verify      = flag.Bool("verify", true, "compare the server model against the in-process baseline")
		quiet       = flag.Bool("quiet", false, "suppress progress output")

		chaosMode  = flag.Bool("chaos", false, "run the kill-and-rebalance chaos campaign (spawns its own cluster; see -fleetd)")
		fleetdPath = flag.String("fleetd", "", "seedfleetd binary for -chaos (required)")
		chaosNodes = flag.Int("nodes", 3, "cluster size for -chaos")
		jrnlRoot   = flag.String("journal-root", "", "journal root directory for -chaos (default: temp dir)")
		killDown   = flag.Duration("kill-down", 250*time.Millisecond, "how long the SIGKILL'd node stays down before restart")
		lossy      = flag.Bool("lossy", false, "route cluster traffic through lossy TCP proxies")
		proxyDelay = flag.Duration("proxy-delay", 2*time.Millisecond, "lossy proxy: base one-way delay")
		proxyJit   = flag.Duration("proxy-jitter", 3*time.Millisecond, "lossy proxy: added uniform jitter")
		proxyKill  = flag.Float64("proxy-killprob", 0.02, "lossy proxy: per-connection kill probability per forwarded chunk")
	)
	flag.Parse()

	masterKey := fleet.DefaultMasterKey
	if *master != "" {
		k, err := fleet.ParseMasterKey(*master)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		masterKey = k
	}
	if *conns <= 0 {
		*conns = *workers
	}

	if *chaosMode {
		os.Exit(runChaos(chaosOpts{
			fleetd:     *fleetdPath,
			nodes:      *chaosNodes,
			journals:   *jrnlRoot,
			devices:    *devices,
			workers:    *workers,
			records:    *records,
			causes:     *causes,
			seed:       *seedVal,
			masterKey:  masterKey,
			killDown:   *killDown,
			lossy:      *lossy,
			proxyDelay: *proxyDelay,
			proxyJit:   *proxyJit,
			proxyKill:  *proxyKill,
			jsonOut:    *jsonOut,
			quiet:      *quiet,
		}))
	}

	logf := func(format string, args ...any) {
		if !*quiet {
			fmt.Printf(format+"\n", args...)
		}
	}

	// Generate the fleet's deterministic workload and the in-process
	// sequential baseline model. The first -testbed devices earn their
	// records from real cloned-testbed runs; the rest are synthetic.
	loads := make([]deviceLoad, *devices)
	baseline := core.NewLearner(0.1, rand.New(rand.NewSource(*seedVal)))
	fromTestbed := 0
	for i := range loads {
		loads[i] = genDevice(*seedVal, i, *records, *reports, *causes)
		if i < *testbed && testbedDevice(&loads[i], *seedVal, i, *causes) {
			fromTestbed++
		}
		baseline.Crowdsource(loads[i].records)
	}
	expected := fleet.MarshalModel(baseline.Export())
	logf("seedload: %d devices (%d testbed-derived), %d workers, %d conns, %d record rows/device (model %d bytes)",
		*devices, fromTestbed, *workers, *conns, *records, len(expected))

	// With -spec, device i's upload waits until its compiled arrival
	// offset (compressed by -timescale) — cluster load then carries the
	// spec's diurnal curves and signaling-storm bursts instead of arriving
	// as one max-rate wall.
	var offsets []time.Duration
	pacedBy := ""
	if *wlSpec != "" {
		blob, err := os.ReadFile(*wlSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seedload:", err)
			os.Exit(2)
		}
		sp, err := workload.ParseSpec(blob)
		if err == nil {
			err = sp.Validate()
		}
		if err == nil {
			offsets, err = workload.UploadSchedule(sp, *seedVal, *devices)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seedload: %s: %v\n", *wlSpec, err)
			os.Exit(2)
		}
		for i := range offsets {
			offsets[i] = time.Duration(float64(offsets[i]) * *timescale)
		}
		pacedBy = sp.Name
		logf("seedload: pacing by spec %q ×%g: uploads span %v", sp.Name, *timescale, offsets[len(offsets)-1])
	}

	var api fleetAPI
	if *clusterSpec != "" {
		nodes, err := cluster.ParseNodeList(*clusterSpec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "seedload:", err)
			os.Exit(2)
		}
		cc, err := fleet.NewClusterClient(fleet.ClusterClientConfig{
			Nodes:  nodes,
			Epoch:  *epoch,
			Client: fleet.ClientConfig{Conns: *conns, Seed: *seedVal},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "seedload:", err)
			os.Exit(2)
		}
		defer cc.Close()
		api = newClusterAdapter(cc)
	} else {
		cl := fleet.NewClient(fleet.ClientConfig{Addr: *addr, Conns: *conns, Seed: *seedVal})
		defer cl.Close()
		api = cl
	}

	var lost, suggestions atomic.Int64
	var wg sync.WaitGroup
	// Contiguous chunks normally; with -spec pacing a stride instead, so
	// simultaneous arrivals (offsets are sorted) spread across workers.
	shards := make([][]int, *workers)
	for i := 0; i < *devices; i++ {
		w := i * *workers / *devices
		if offsets != nil {
			w = i % *workers
		}
		shards[w] = append(shards[w], i)
	}
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(idx []int) {
			defer wg.Done()
			for _, i := range idx {
				ld := loads[i]
				if offsets != nil {
					if d := time.Until(start.Add(offsets[i])); d > 0 {
						time.Sleep(d)
					}
				}
				dev := fleet.NewSimDevice(masterKey, ld.imsi)
				blob := core.MarshalRecords(ld.records)
				sealed, err := dev.SealRecords(blob)
				if err == nil {
					err = api.UploadRecords(ld.imsi, sealed)
				}
				if err != nil {
					lost.Add(1)
					fmt.Fprintf(os.Stderr, "seedload: %s: %v\n", ld.imsi, err)
					continue
				}
				for _, rep := range ld.reports {
					sr, err := dev.SealReport(rep.Marshal())
					if err == nil {
						err = api.Report(ld.imsi, sr)
					}
					if err != nil {
						lost.Add(1)
						fmt.Fprintf(os.Stderr, "seedload: %s report: %v\n", ld.imsi, err)
					}
				}
				if payload, err := api.Query(ld.imsi, ld.query); err == nil {
					if _, ok, _ := dev.OpenSuggest(payload); ok {
						suggestions.Add(1)
					}
				}
			}
		}(shards[w])
	}
	wg.Wait()
	wall := time.Since(start)

	res := result{
		Devices: *devices, Workers: *workers, Conns: *conns,
		Records: *records, Reports: *reports, Testbed: fromTestbed,
		PacedBySpec: pacedBy, Seed: *seedVal,
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		WallMS:        float64(wall) / float64(time.Millisecond),
		UploadsPerSec: float64(*devices) / wall.Seconds(),
		Lost:          lost.Load(),
		Retries:       api.Retries(),
		Redials:       api.Redials(),
		Suggestions:   suggestions.Load(),
		UploadP50MS:   ms(api.Latency("upload"), 50),
		UploadP95MS:   ms(api.Latency("upload"), 95),
		UploadP99MS:   ms(api.Latency("upload"), 99),
		QueryP50MS:    ms(api.Latency("query"), 50),
		QueryP95MS:    ms(api.Latency("query"), 95),
		QueryP99MS:    ms(api.Latency("query"), 99),
	}
	totalOps := *devices * (2 + *reports) // upload + reports + query
	res.OpsPerSec = float64(totalOps) / wall.Seconds()

	if st, err := api.FetchStats(); err == nil {
		res.Server = st
	} else {
		fmt.Fprintf(os.Stderr, "seedload: stats pull: %v\n", err)
	}

	exit := 0
	if *verify {
		got, err := api.FetchModel()
		if err != nil {
			fmt.Fprintf(os.Stderr, "seedload: model pull: %v\n", err)
			exit = 1
		} else {
			res.ModelBytes = len(got)
			match := string(got) == string(expected)
			res.ModelMatch = &match
			if !match {
				fmt.Fprintf(os.Stderr, "seedload: MODEL MISMATCH: server %d bytes, baseline %d bytes\n",
					len(got), len(expected))
				exit = 1
			}
		}
	}
	if res.Lost > 0 {
		fmt.Fprintf(os.Stderr, "seedload: %d uploads LOST\n", res.Lost)
		exit = 1
	}

	logf("seedload: %d uploads in %.1fms — %.0f uploads/s, %.0f ops/s (lost=%d retries=%d redials=%d)",
		*devices, res.WallMS, res.UploadsPerSec, res.OpsPerSec, res.Lost, res.Retries, res.Redials)
	logf("seedload: %s", latSummary(api, "upload"))
	logf("seedload: %s", latSummary(api, "query"))
	if res.ModelMatch != nil {
		logf("seedload: model match: %v (%d bytes, %d suggestions received)", *res.ModelMatch, res.ModelBytes, res.Suggestions)
	}

	if *jsonOut != "" {
		buf, err := json.MarshalIndent(res, "", "  ")
		if err == nil {
			buf = append(buf, '\n')
			if *jsonOut == "-" {
				_, err = os.Stdout.Write(buf)
			} else {
				err = os.WriteFile(*jsonOut, buf, 0o644)
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "seedload: writing %s: %v\n", *jsonOut, err)
			exit = 1
		}
	}
	os.Exit(exit)
}
