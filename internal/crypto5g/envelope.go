package crypto5g

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Envelope seals and opens SEED's collaboration payloads. Per §6 of the
// paper, "the information is encrypted with 128-EEA2 and integrity
// protected with 128-EIA2 using the pre-shared in-SIM key" with a message
// counter for replay protection. Sealed layout:
//
//	COUNTER(4) || CIPHERTEXT(n) || MAC-I(4)
//
// The MAC is computed over COUNTER || CIPHERTEXT (encrypt-then-MAC).
// Both sides keep a monotonically increasing counter per direction; an
// opened counter must exceed the last accepted one.
type Envelope struct {
	encKey  []byte
	intKey  []byte
	bearer  uint8
	sendCtr map[Direction]uint32
	recvCtr map[Direction]uint32
}

// ErrIntegrity is returned when a MAC check fails.
var ErrIntegrity = errors.New("crypto5g: envelope integrity check failed")

// ErrReplay is returned when a counter does not advance.
var ErrReplay = errors.New("crypto5g: envelope counter replayed or reordered")

// EnvelopeOverhead is the number of bytes Seal adds to a payload.
const EnvelopeOverhead = 8

// NewEnvelope builds an envelope using the pre-shared in-SIM key material.
// encKey and intKey must be 16 bytes each (they may be equal; real
// deployments derive both from K). bearer tags the protected channel.
func NewEnvelope(encKey, intKey []byte, bearer uint8) (*Envelope, error) {
	if len(encKey) != 16 || len(intKey) != 16 {
		return nil, fmt.Errorf("crypto5g: envelope keys must be 16 bytes, got %d and %d", len(encKey), len(intKey))
	}
	return &Envelope{
		encKey:  append([]byte(nil), encKey...),
		intKey:  append([]byte(nil), intKey...),
		bearer:  bearer,
		sendCtr: map[Direction]uint32{},
		recvCtr: map[Direction]uint32{},
	}, nil
}

// Seal encrypts and authenticates plaintext for the given direction,
// advancing the send counter.
func (e *Envelope) Seal(dir Direction, plaintext []byte) ([]byte, error) {
	e.sendCtr[dir]++
	ctr := e.sendCtr[dir]
	ct, err := EEA2(e.encKey, ctr, e.bearer, dir, plaintext)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 4+len(ct)+4)
	binary.BigEndian.PutUint32(out[0:4], ctr)
	copy(out[4:], ct)
	mac, err := EIA2(e.intKey, ctr, e.bearer, dir, out[:4+len(ct)])
	if err != nil {
		return nil, err
	}
	copy(out[4+len(ct):], mac[:])
	return out, nil
}

// Open verifies and decrypts a sealed message for the given direction,
// enforcing counter monotonicity.
func (e *Envelope) Open(dir Direction, sealed []byte) ([]byte, error) {
	if len(sealed) < EnvelopeOverhead {
		return nil, fmt.Errorf("crypto5g: sealed message too short (%d bytes)", len(sealed))
	}
	ctr := binary.BigEndian.Uint32(sealed[0:4])
	body := sealed[4 : len(sealed)-4]
	mac, err := EIA2(e.intKey, ctr, e.bearer, dir, sealed[:len(sealed)-4])
	if err != nil {
		return nil, err
	}
	if !ConstantTimeEqual(mac[:], sealed[len(sealed)-4:]) {
		return nil, ErrIntegrity
	}
	if ctr <= e.recvCtr[dir] {
		return nil, ErrReplay
	}
	pt, err := EEA2(e.encKey, ctr, e.bearer, dir, body)
	if err != nil {
		return nil, err
	}
	e.recvCtr[dir] = ctr
	return pt, nil
}
