package modem

import (
	"strings"
	"testing"
	"time"

	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/nas"
	"github.com/seed5g/seed/internal/radio"
	"github.com/seed5g/seed/internal/sched"
	"github.com/seed5g/seed/internal/sim"
)

// fakeNet is a scripted network: it answers registration and session
// procedures inline (no radio latency) so modem behaviours can be tested
// in isolation.
type fakeNet struct {
	t *testing.T
	k *sched.Kernel
	m *Modem

	rejectRegWith  cause.Code // 0 = accept
	silentReg      bool
	rejectSessWith cause.Code
	silentSess     bool
	regSeen        int
	sessSeen       int
	releaseSeen    int
	gutiSeq        int
	uplink         []nas.Message
	lastSessionHdr nas.SMHeader
	suggestedOnRej string
}

func (f *fakeNet) tx(frame any) bool {
	switch fr := frame.(type) {
	case radio.UplinkNAS:
		msg, err := nas.Unmarshal(fr.Bytes)
		if err != nil {
			f.t.Fatalf("network got undecodable NAS: %v", err)
		}
		f.uplink = append(f.uplink, msg)
		f.handle(msg)
	case radio.RRCConnect, radio.RRCRelease, radio.Packet:
	}
	return true
}

func (f *fakeNet) down(msg nas.Message) {
	data := nas.Marshal(msg)
	f.k.After(time.Millisecond, func() {
		f.m.HandleDownlink(radio.DownlinkNAS{Bytes: data})
	})
}

func (f *fakeNet) handle(msg nas.Message) {
	switch t := msg.(type) {
	case *nas.RegistrationRequest:
		f.regSeen++
		if f.silentReg {
			return
		}
		if f.rejectRegWith != 0 {
			f.down(&nas.RegistrationReject{Cause: f.rejectRegWith})
			return
		}
		f.gutiSeq++
		f.down(&nas.RegistrationAccept{
			GUTI: nas.MobileIdentity{Type: nas.IdentityGUTI, Value: "g" + string(rune('0'+f.gutiSeq))},
		})
	case *nas.PDUSessionEstablishmentRequest:
		f.sessSeen++
		f.lastSessionHdr = t.SMHeader
		if f.silentSess {
			return
		}
		if f.rejectSessWith != 0 {
			f.down(&nas.PDUSessionEstablishmentReject{
				SMHeader: t.SMHeader, Cause: f.rejectSessWith, SuggestedDNN: f.suggestedOnRej,
			})
			return
		}
		f.down(&nas.PDUSessionEstablishmentAccept{
			SMHeader: t.SMHeader, SessionType: t.SessionType,
			Address: nas.Addr{10, 0, 0, byte(f.sessSeen)},
			QoS:     nas.QoS{FiveQI: 9},
			DNN:     t.DNN,
		})
	case *nas.PDUSessionReleaseRequest:
		f.releaseSeen++
		f.down(&nas.PDUSessionReleaseCommand{SMHeader: t.SMHeader, Cause: cause.SMRegularDeactivation})
	case *nas.DeregistrationRequest:
		f.down(&nas.DeregistrationAccept{})
	case *nas.ServiceRequest:
		f.down(&nas.ServiceAccept{})
	case *nas.PDUSessionModificationRequest:
		q := nas.QoS{FiveQI: 5}
		f.down(&nas.PDUSessionModificationCommand{SMHeader: t.SMHeader, QoS: &q})
	}
}

func newModemHarness(t *testing.T) (*sched.Kernel, *Modem, *fakeNet) {
	t.Helper()
	k := sched.New(1)
	card, err := sim.NewCard(sim.DefaultEEPROM, sim.DefaultRAM, [16]byte{1}, sim.Profile{
		IMSI:  "001010000000001",
		PLMNs: []uint32{ServingPLMN},
		DNN:   "internet",
		SST:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &fakeNet{t: t, k: k}
	m := New(k, DefaultConfig(), card, f.tx)
	f.m = m
	return k, m, f
}

func TestBootRegistersAndEstablishes(t *testing.T) {
	k, m, f := newModemHarness(t)
	m.PowerOn()
	k.RunFor(10 * time.Second)
	if m.State() != StateRegistered {
		t.Fatalf("state = %v", m.State())
	}
	s, okS := m.FirstActiveSession()
	if !okS || s.DNN != "internet" || s.Address.IsZero() {
		t.Fatalf("session = %+v ok=%v", s, okS)
	}
	// Fresh preferred-PLMN list → fast search: boot in well under 3 s.
	// (boot 0.8 + profile 0.04 + list search 0.3 + procedure RTTs)
	if f.regSeen != 1 {
		t.Fatalf("registrations = %d", f.regSeen)
	}
	if m.Stats().Attaches != 1 {
		t.Fatalf("attaches = %d", m.Stats().Attaches)
	}
}

func TestStalePLMNListForcesFullSearch(t *testing.T) {
	k, m, _ := newModemHarness(t)
	m.PowerOn()
	k.RunFor(time.Second) // boot done, profile being read
	m.OverridePLMNList([]uint32{999999})
	m.PowerOff()
	m.PowerOn()
	k.RunFor(500 * time.Millisecond)
	// Record when registration completes with the full (9 s) search.
	k.RunFor(15 * time.Second)
	if m.State() != StateRegistered {
		t.Fatalf("state = %v", m.State())
	}
}

func TestT3511RetryAfterReject(t *testing.T) {
	k, m, f := newModemHarness(t)
	f.rejectRegWith = cause.MMPLMNNotAllowed // not transient: full T3511
	m.PowerOn()
	k.RunFor(3 * time.Second)
	if f.regSeen != 1 {
		t.Fatalf("early regs = %d", f.regSeen)
	}
	k.RunFor(10 * time.Second) // T3511 = 10 s
	if f.regSeen != 2 {
		t.Fatalf("regs after T3511 = %d", f.regSeen)
	}
	f.rejectRegWith = 0 // heal
	k.RunFor(11 * time.Second)
	if m.State() != StateRegistered {
		t.Fatalf("state = %v", m.State())
	}
}

func TestTransientCauseQuickRetry(t *testing.T) {
	k, m, f := newModemHarness(t)
	f.rejectRegWith = cause.MMCongestion // transient → 500 ms retry
	m.PowerOn()
	k.RunFor(2 * time.Second)
	if f.regSeen < 2 {
		t.Fatalf("regs = %d, transient retry should be fast", f.regSeen)
	}
	f.rejectRegWith = 0
	k.RunFor(2 * time.Second)
	if m.State() != StateRegistered {
		t.Fatal("did not recover")
	}
}

func TestT3502AfterMaxAttempts(t *testing.T) {
	k, m, f := newModemHarness(t)
	f.rejectRegWith = cause.MMPLMNNotAllowed
	m.PowerOn()
	// 1 initial + 5 retries at 10 s each ≈ first 55 s.
	k.RunFor(60 * time.Second)
	n := f.regSeen
	if n != 6 {
		t.Fatalf("regs before T3502 = %d, want 6", n)
	}
	// No more attempts until T3502 (12 min) expires...
	k.RunFor(10 * time.Minute)
	if f.regSeen != n {
		t.Fatalf("regs during T3502 = %d", f.regSeen)
	}
	f.rejectRegWith = 0
	k.RunFor(3 * time.Minute)
	if m.State() != StateRegistered {
		t.Fatal("did not recover after T3502 cycle")
	}
}

func TestT3510TimeoutOnSilentNetwork(t *testing.T) {
	k, m, f := newModemHarness(t)
	f.silentReg = true
	m.PowerOn()
	k.RunFor(5 * time.Second)
	if f.regSeen != 1 {
		t.Fatalf("regs = %d", f.regSeen)
	}
	// T3510 (15 s) + T3511 (10 s) → second attempt by ~27 s after boot.
	k.RunFor(25 * time.Second)
	if f.regSeen < 2 {
		t.Fatalf("no retry after T3510 expiry: regs = %d", f.regSeen)
	}
}

func TestSessionRejectLoopKeepsStaleDNN(t *testing.T) {
	k, m, f := newModemHarness(t)
	f.rejectSessWith = cause.SMMissingOrUnknownDNN
	f.suggestedOnRej = "internet2"
	m.PowerOn()
	k.RunFor(2 * time.Minute)
	if f.sessSeen < 3 {
		t.Fatalf("session attempts = %d, want blind retry loop", f.sessSeen)
	}
	// The legacy modem must have ignored the suggested DNN.
	for _, msg := range f.uplink {
		if req, okR := msg.(*nas.PDUSessionEstablishmentRequest); okR {
			if req.DNN != "internet" && req.DNN != "" {
				t.Fatalf("modem adopted suggested DNN %q — legacy must not", req.DNN)
			}
		}
	}
}

func TestSessionEscalatesToReattach(t *testing.T) {
	k, m, f := newModemHarness(t)
	f.rejectSessWith = cause.SMMissingOrUnknownDNN
	m.PowerOn()
	// 5 session attempts at T3580 (16 s) spacing, then reattach.
	k.RunFor(3 * time.Minute)
	if m.Stats().Attaches < 2 {
		t.Fatalf("attaches = %d, want escalation to reattach", m.Stats().Attaches)
	}
}

func TestRebootClearsGUTIAndReloadsProfile(t *testing.T) {
	k, m, f := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)
	m.OverrideSessionDNN("stale-apn")
	m.Reboot()
	k.RunFor(10 * time.Second)
	if m.State() != StateRegistered {
		t.Fatal("not registered after reboot")
	}
	if m.Profile().DNN != "internet" {
		t.Fatalf("profile DNN after reboot = %q, want SIM value", m.Profile().DNN)
	}
	if m.Stats().Reboots != 1 {
		t.Fatalf("reboots = %d", m.Stats().Reboots)
	}
	// Fresh registration after reboot used SUCI (GUTI cleared):
	last := f.uplink[len(f.uplink)-2] // [..., RegistrationRequest, PDU req]
	foundSUCI := false
	for _, msg := range f.uplink {
		if rr, okR := msg.(*nas.RegistrationRequest); okR && rr.Identity.Type == nas.IdentitySUCI {
			foundSUCI = true
		}
	}
	_ = last
	if !foundSUCI {
		t.Fatal("no SUCI registration observed after reboot")
	}
}

func TestSimulateMobilityReattachesWithGUTI(t *testing.T) {
	k, m, f := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)
	f.uplink = nil
	m.SimulateMobility()
	k.RunFor(5 * time.Second)
	var reg *nas.RegistrationRequest
	for _, msg := range f.uplink {
		if rr, okR := msg.(*nas.RegistrationRequest); okR {
			reg = rr
		}
	}
	if reg == nil || reg.Identity.Type != nas.IdentityGUTI {
		t.Fatalf("mobility registration = %+v, want GUTI identity", reg)
	}
	if m.State() != StateRegistered {
		t.Fatal("mobility re-registration failed")
	}
}

func TestNetworkReleaseTriggersReestablish(t *testing.T) {
	k, m, f := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)
	s, _ := m.FirstActiveSession()
	sessBefore := f.sessSeen
	// Network-initiated release of the default session.
	f.down(&nas.PDUSessionReleaseCommand{
		SMHeader: nas.SMHeader{PDUSessionID: s.ID}, Cause: cause.SMRegularDeactivation,
	})
	k.RunFor(3 * time.Second)
	if f.sessSeen != sessBefore+1 {
		t.Fatalf("no re-establishment after network release: %d → %d", sessBefore, f.sessSeen)
	}
	if _, okS := m.FirstActiveSession(); !okS {
		t.Fatal("session not back up")
	}
}

func TestModificationCommandApplied(t *testing.T) {
	k, m, _ := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)
	s, _ := m.FirstActiveSession()
	if !m.RequestModification(s.ID) {
		t.Fatal("RequestModification refused")
	}
	k.RunFor(time.Second)
	s2, _ := m.Session(s.ID)
	if s2.QoS.FiveQI != 5 {
		t.Fatalf("QoS after modification = %+v", s2.QoS)
	}
}

func TestSendRawSessionRequestHasNoRetryStateAndNeedsRegistration(t *testing.T) {
	k, m, f := newModemHarness(t)
	if m.SendRawSessionRequest("DIAGdeadbeef") {
		t.Fatal("raw request accepted while off")
	}
	f.rejectSessWith = 0
	m.PowerOn()
	k.RunFor(5 * time.Second)
	sessBefore := len(m.Sessions())
	f.rejectSessWith = cause.SMRequestRejectedUnspec // the DIAG ACK
	if !m.SendRawSessionRequest("DIAGdeadbeef") {
		t.Fatal("raw request refused while registered")
	}
	k.RunFor(30 * time.Second)
	if len(m.Sessions()) != sessBefore {
		t.Fatal("raw request created tracked session state")
	}
	// No retry loop: exactly one DIAG request went out.
	diags := 0
	for _, msg := range f.uplink {
		if req, okR := msg.(*nas.PDUSessionEstablishmentRequest); okR && strings.HasPrefix(req.DNN, "DIAG") {
			diags++
		}
	}
	if diags != 1 {
		t.Fatalf("DIAG requests = %d, want exactly 1", diags)
	}
}

func TestEstablishSessionRequiresRegistration(t *testing.T) {
	k, m, _ := newModemHarness(t)
	if id := m.EstablishSession("internet", nas.SessionIPv4); id != 0 {
		t.Fatalf("establish while off returned %d", id)
	}
	m.PowerOn()
	k.RunFor(5 * time.Second)
	if id := m.EstablishSession("ims", nas.SessionIPv4); id == 0 {
		t.Fatal("establish while registered refused")
	}
}

func TestATCommandSurface(t *testing.T) {
	k, m, _ := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)

	cases := []struct {
		cmd  string
		want string
	}{
		{"AT", "OK"},
		{"AT+CGATT?", "+CGATT: 1"},
		{`AT+CGDCONT=1,"IP","newdnn"`, "OK"},
		{"AT+COPS=0", "OK"},
	}
	for _, c := range cases {
		out, err := m.Execute(c.cmd)
		if err != nil || out != c.want {
			t.Fatalf("%q → %q, %v", c.cmd, out, err)
		}
	}
	if m.Profile().DNN != "newdnn" {
		t.Fatalf("CGDCONT did not update cache: %q", m.Profile().DNN)
	}
	// Error cases.
	for _, bad := range []string{
		"AT+CFUN=9", "AT+CGDCONT=x", `AT+CGDCONT=1,"IP",""`,
		"AT+CGACT=5,1", "AT+CGACT=1", "AT+UNKNOWN",
	} {
		if _, err := m.Execute(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if m.Stats().ATCommands == 0 {
		t.Fatal("AT commands not counted")
	}
}

func TestProactiveRunATAndDisplayText(t *testing.T) {
	k, m, _ := newModemHarness(t)
	var notices []string
	m.SetHooks(Hooks{OnDisplayText: func(s string) { notices = append(notices, s) }})
	m.PowerOn()
	k.RunFor(5 * time.Second)

	m.card.QueueProactive(sim.ProactiveCommand{Type: sim.ProactiveRunATCommand, Text: `AT+CGDCONT=1,"IP","viaproactive"`})
	m.card.QueueProactive(sim.ProactiveCommand{Type: sim.ProactiveDisplayText, Text: "contact operator"})
	k.RunFor(time.Second)
	if m.Profile().DNN != "viaproactive" {
		t.Fatalf("RUN AT COMMAND not executed: %q", m.Profile().DNN)
	}
	if len(notices) != 1 || notices[0] != "contact operator" {
		t.Fatalf("notices = %v", notices)
	}
}

func TestRefreshFileChangeUpdatesWithoutDetach(t *testing.T) {
	k, m, f := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)
	attaches := m.Stats().Attaches
	_ = m.card.FS().Write(sim.EFDNN, []byte("refreshed"))
	m.card.QueueProactive(sim.ProactiveCommand{
		Type: sim.ProactiveRefresh, Mode: sim.RefreshFileChange, Files: []sim.FileID{sim.EFDNN},
	})
	k.RunFor(time.Second)
	if m.Profile().DNN != "refreshed" {
		t.Fatalf("DNN after file-change refresh = %q", m.Profile().DNN)
	}
	if m.Stats().Attaches != attaches {
		t.Fatal("file-change refresh triggered a reattach")
	}
	_ = f
}

func TestRefreshInitReattachesAfterSIMReinit(t *testing.T) {
	k, m, _ := newModemHarness(t)
	m.PowerOn()
	k.RunFor(5 * time.Second)
	attaches := m.Stats().Attaches
	start := k.Now()
	m.card.QueueProactive(sim.ProactiveCommand{Type: sim.ProactiveRefresh, Mode: sim.RefreshInit})
	k.RunFor(10 * time.Second)
	if m.Stats().Attaches != attaches+1 {
		t.Fatalf("attaches = %d, want one reattach", m.Stats().Attaches)
	}
	if m.State() != StateRegistered {
		t.Fatal("not registered after refresh")
	}
	_ = start
}

func TestPacketPathsRequireActiveSession(t *testing.T) {
	k, m, _ := newModemHarness(t)
	pkt := radio.Packet{SessionID: 1, Proto: nas.ProtoTCP, Length: 100}
	if m.SendPacket(pkt) {
		t.Fatal("packet sent with no session")
	}
	m.PowerOn()
	k.RunFor(5 * time.Second)
	s, _ := m.FirstActiveSession()
	pkt.SessionID = s.ID
	if !m.SendPacket(pkt) {
		t.Fatal("packet refused on active session")
	}
	if m.Stats().PacketsUp != 1 {
		t.Fatalf("PacketsUp = %d", m.Stats().PacketsUp)
	}
	var got []radio.Packet
	m.SetHooks(Hooks{OnDownlinkData: func(p radio.Packet) { got = append(got, p) }})
	m.HandleDownlink(radio.Packet{SessionID: s.ID, Length: 50})
	if len(got) != 1 || m.Stats().PacketsDown != 1 {
		t.Fatalf("downlink delivery: %d pkts, stats %d", len(got), m.Stats().PacketsDown)
	}
}

func TestStateStrings(t *testing.T) {
	for s, want := range map[State]string{
		StateOff: "OFF", StateBooting: "BOOTING", StateSearching: "SEARCHING",
		StateDeregistered: "DEREGISTERED", StateRegistering: "REGISTERING",
		StateRegistered: "REGISTERED", State(99): "State(99)",
	} {
		if s.String() != want {
			t.Fatalf("%d.String() = %q", s, s.String())
		}
	}
}
