package core5g

import (
	"fmt"
	"time"

	"github.com/seed5g/seed/internal/radio"
	"github.com/seed5g/seed/internal/sched"
)

// Cells models a multi-cell deployment sharing one core: the small-cell
// topology whose frequent handovers drive the §2 failure statistics. Each
// cell is a full gNB with its own tracking area; UEs hand over between
// them, and a handover may lose the AMF-side context transfer — the
// mechanistic origin of the "UE identity cannot be derived" failures.
type Cells struct {
	k    *sched.Kernel
	net  *Network
	gnbs map[int]*GNB
	// ueCell tracks which cell each UE is currently served by.
	ueCell map[string]int
	// ueTx remembers each UE's downlink transmit function so handovers
	// can re-home it.
	ueTx map[string]func(any) bool

	// ContextLossProb is the probability that a handover's context
	// transfer fails (the new TA cannot derive the UE identity).
	ContextLossProb float64
	// edgeLoss overrides ContextLossProb for specific directed (from, to)
	// cell pairs — e.g. a handover crossing an AMF-pool boundary loses
	// context far more often than one inside a pool.
	edgeLoss map[[2]int]float64

	handovers   int
	contextLoss int
}

// NewCells builds n-1 additional cells next to the network's primary gNB
// (cell 0), re-wires the core's downlink path through the cell router,
// and returns the cell manager.
func NewCells(k *sched.Kernel, net *Network, n int) *Cells {
	c := &Cells{
		k: k, net: net,
		gnbs:   map[int]*GNB{0: net.GNB},
		ueCell: make(map[string]int),
		ueTx:   make(map[string]func(any) bool),
	}
	for i := 1; i < n; i++ {
		g := NewGNB(k, 3*time.Millisecond)
		g.SetCore(net.AMF, net.UPF)
		c.gnbs[i] = g
	}
	net.SetRadioAccess(c)
	return c
}

// SendNAS implements RadioAccess: route to the UE's serving cell.
func (c *Cells) SendNAS(imsi string, msg []byte) bool {
	return c.ServingGNB(imsi).SendNAS(imsi, msg)
}

// SendData implements RadioAccess.
func (c *Cells) SendData(pkt radio.Packet) bool {
	return c.ServingGNB(pkt.UE).SendData(pkt)
}

// AddBearer implements RadioAccess.
func (c *Cells) AddBearer(imsi string, sessionID uint8) {
	c.ServingGNB(imsi).AddBearer(imsi, sessionID)
}

// RemoveBearer implements RadioAccess.
func (c *Cells) RemoveBearer(imsi string, sessionID uint8) {
	c.ServingGNB(imsi).RemoveBearer(imsi, sessionID)
}

// Cell returns the gNB serving the given cell index.
func (c *Cells) Cell(i int) (*GNB, bool) {
	g, okG := c.gnbs[i]
	return g, okG
}

// Count returns the number of cells.
func (c *Cells) Count() int { return len(c.gnbs) }

// Stats returns (handovers performed, context transfers lost).
func (c *Cells) Stats() (handovers, contextLoss int) {
	return c.handovers, c.contextLoss
}

// SetEdgeContextLoss overrides the context-loss probability for handovers
// along the directed edge from → to.
func (c *Cells) SetEdgeContextLoss(from, to int, p float64) {
	if c.edgeLoss == nil {
		c.edgeLoss = make(map[[2]int]float64)
	}
	c.edgeLoss[[2]int{from, to}] = p
}

// lossProb returns the effective context-loss probability for the given
// directed handover.
func (c *Cells) lossProb(from, to int) float64 {
	if p, ok := c.edgeLoss[[2]int{from, to}]; ok {
		return p
	}
	return c.ContextLossProb
}

// Register places a UE in cell 0 with its downlink transmit function
// (call instead of GNB.AttachUE when using cells).
func (c *Cells) Register(imsi string, tx func(any) bool) {
	c.ueCell[imsi] = 0
	c.ueTx[imsi] = tx
	c.gnbs[0].AttachUE(imsi, tx)
}

// ServingCell returns the UE's current cell index.
func (c *Cells) ServingCell(imsi string) int { return c.ueCell[imsi] }

// ServingGNB returns the UE's current gNB (for wiring uplink handlers).
func (c *Cells) ServingGNB(imsi string) *GNB { return c.gnbs[c.ueCell[imsi]] }

// Handover moves a UE to the target cell. The radio re-homes immediately;
// whether the core-side context survives depends on ContextLossProb (or
// forceLoss). It reports whether the context transfer succeeded. The UE
// must then perform a mobility registration in the new tracking area —
// with a lost context, that registration meets cause 9.
func (c *Cells) Handover(imsi string, target int, forceLoss bool) (bool, error) {
	from, okU := c.ueCell[imsi]
	if !okU {
		return false, fmt.Errorf("core5g: UE %s not registered with cells", imsi)
	}
	to, okG := c.gnbs[target]
	if !okG {
		return false, fmt.Errorf("core5g: no cell %d", target)
	}
	if target == from {
		return true, nil
	}
	c.handovers++
	// The bearers and the RRC connection move with the UE.
	bearers := c.gnbs[from].Bearers(imsi)
	connected := c.gnbs[from].Connected(imsi)
	c.gnbs[from].DetachUE(imsi)
	to.AttachUE(imsi, c.ueTx[imsi])
	for _, b := range bearers {
		to.AddBearer(imsi, b)
	}
	to.setConnected(imsi, connected)
	c.ueCell[imsi] = target

	p := c.lossProb(from, target)
	lost := forceLoss || (p > 0 && c.k.Rand().Float64() < p)
	if lost {
		c.contextLoss++
		c.net.AMF.DesyncIdentity(imsi)
		return false, nil
	}
	return true, nil
}
