// Command seedbench regenerates the tables and figures of the SEED paper's
// evaluation section (§7) on the emulated testbed and prints them as text.
//
// Usage:
//
//	seedbench [-exp all|table1|table2|table3|table4|table5|figure2|figure3|
//	           figure11a|figure11b|figure12|figure13|coverage|learning]
//	          [-samples N] [-seed S] [-parallel P] [-json FILE]
//
// Everything runs on the virtual clock: regenerating the full evaluation
// takes seconds of wall time. Independent scenario cells fan across
// -parallel worker goroutines (default GOMAXPROCS); results are
// bit-for-bit identical at any parallelism. With -parallel > 1 each
// experiment also runs once sequentially so the per-experiment speedup
// against the recorded sequential baseline can be reported — and the two
// outputs are compared byte-for-byte as a live determinism check.
//
// -json FILE writes machine-readable per-experiment results and
// wall-clock timings ("-" for stdout), the format the BENCH_*.json perf
// trajectory consumes.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	seed "github.com/seed5g/seed"
)

// expTiming is one experiment's machine-readable record.
type expTiming struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	// SequentialWallMS and Speedup are present when -parallel > 1: the
	// same experiment re-run with one worker as the baseline.
	SequentialWallMS float64 `json:"sequential_wall_ms,omitempty"`
	Speedup          float64 `json:"speedup,omitempty"`
	// Deterministic reports that the parallel output matched the
	// sequential baseline byte-for-byte (always true when no baseline
	// was run).
	Deterministic bool `json:"deterministic"`
}

// benchReport is the top-level -json document.
type benchReport struct {
	Seed                  int64       `json:"seed"`
	Samples               int         `json:"samples"`
	Parallel              int         `json:"parallel"`
	GOMAXPROCS            int         `json:"gomaxprocs"`
	Experiments           []expTiming `json:"experiments"`
	TotalWallMS           float64     `json:"total_wall_ms"`
	TotalSequentialWallMS float64     `json:"total_sequential_wall_ms,omitempty"`
	TotalSpeedup          float64     `json:"total_speedup,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (all, table1..5, figure2/3/11a/11b/12/13, coverage, learning)")
	samples := flag.Int("samples", 100, "replayed failure cases per class for the dataset-driven experiments")
	seedVal := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 0, "scenario worker goroutines (0 = GOMAXPROCS, 1 = sequential)")
	jsonOut := flag.String("json", "", "write machine-readable results and timings to this file (- for stdout)")
	cdfOut := flag.String("cdf", "", "also write the Figure 2 CDFs as CSV to this file")
	flag.Parse()

	seed.SetParallelism(*parallel)
	workers := seed.Parallelism()

	ds := seed.GenerateDataset(*seedVal)

	var fig2 seed.Figure2Result
	experiments := []struct {
		name string
		run  func() string
	}{
		{"table1", func() string { return ds.RenderTable1() }},
		{"table2", table2},
		{"table3", table3},
		{"figure2", func() string {
			fig2 = seed.ExperimentFigure2(ds, *samples, *seedVal)
			return fig2.Render()
		}},
		{"figure3", func() string { return seed.ExperimentFigure3(max(8, *samples/10), *seedVal).Render() }},
		{"table4", func() string { return seed.ExperimentTable4(ds, *samples, *seedVal).Render() }},
		{"table5", func() string { return seed.ExperimentTable5(3, *seedVal).Render() }},
		{"figure11a", func() string { return seed.ExperimentFigure11a(*seedVal).Render() }},
		{"figure11b", func() string { return seed.ExperimentFigure11b(*seedVal).Render() }},
		{"figure12", func() string { return seed.ExperimentFigure12(50, *seedVal).Render() }},
		{"figure13", func() string { return seed.ExperimentFigure13(*seedVal).Render() }},
		{"coverage", func() string { return seed.ExperimentCoverage(ds, *samples, *seedVal).Render() }},
		{"learning", func() string { return seed.ExperimentLearning(6, 4, 50, *seedVal).Render() }},
	}

	if *exp != "all" {
		known := false
		for _, e := range experiments {
			if e.name == *exp {
				known = true
			}
		}
		if !known {
			var names []string
			for _, e := range experiments {
				names = append(names, e.name)
			}
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: all %s)\n", *exp, strings.Join(names, " "))
			os.Exit(2)
		}
	}

	report := benchReport{
		Seed: *seedVal, Samples: *samples,
		Parallel: workers, GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, e := range experiments {
		if *exp != "all" && *exp != e.name {
			continue
		}
		t := expTiming{Name: e.name, Deterministic: true}

		var baseline string
		if workers > 1 {
			// Recorded sequential baseline: same experiment, one worker.
			seed.SetParallelism(1)
			start := time.Now()
			baseline = e.run()
			t.SequentialWallMS = msSince(start)
			seed.SetParallelism(workers)
		}

		start := time.Now()
		out := e.run()
		t.WallMS = msSince(start)

		fmt.Print(out)
		if workers > 1 {
			t.Speedup = t.SequentialWallMS / t.WallMS
			t.Deterministic = out == baseline
			fmt.Printf("  [%s regenerated in %.0fms; sequential %.0fms; speedup %.2fx @%d workers]\n",
				e.name, t.WallMS, t.SequentialWallMS, t.Speedup, workers)
			if !t.Deterministic {
				fmt.Fprintf(os.Stderr, "WARNING: %s parallel output differs from the sequential baseline\n", e.name)
			}
		} else {
			fmt.Printf("  [%s regenerated in %.0fms]\n", e.name, t.WallMS)
		}
		fmt.Println()

		report.Experiments = append(report.Experiments, t)
		report.TotalWallMS += t.WallMS
		report.TotalSequentialWallMS += t.SequentialWallMS
	}
	if report.TotalWallMS > 0 && report.TotalSequentialWallMS > 0 {
		report.TotalSpeedup = report.TotalSequentialWallMS / report.TotalWallMS
		fmt.Printf("total wall-clock %.0fms vs sequential %.0fms: %.2fx speedup @%d workers\n",
			report.TotalWallMS, report.TotalSequentialWallMS, report.TotalSpeedup, workers)
	}

	if *cdfOut != "" && (*exp == "all" || *exp == "figure2") {
		if err := writeCDFCSV(*cdfOut, fig2); err != nil {
			fmt.Fprintf(os.Stderr, "cdf: %v\n", err)
		} else {
			fmt.Printf("[CDF points written to %s]\n", *cdfOut)
		}
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, report); err != nil {
			fmt.Fprintf(os.Stderr, "json: %v\n", err)
			os.Exit(1)
		}
	}
}

func msSince(start time.Time) float64 {
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// writeJSON dumps the report ("-" selects stdout).
func writeJSON(path string, report benchReport) error {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(blob)
		return err
	}
	return os.WriteFile(path, blob, 0o644)
}

// writeCDFCSV dumps the Figure 2 curves as plane,seconds,fraction rows.
func writeCDFCSV(path string, res seed.Figure2Result) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	fmt.Fprintln(f, "plane,seconds,fraction")
	for _, p := range res.Control {
		fmt.Fprintf(f, "control,%.3f,%.4f\n", p.Seconds, p.Fraction)
	}
	for _, p := range res.Data {
		fmt.Fprintf(f, "data,%.3f,%.4f\n", p.Seconds, p.Fraction)
	}
	return nil
}

// table2 reproduces the qualitative solution comparison (static).
func table2() string {
	rows := [][]string{
		{"Solutions", "Detection&Diag", "Config recovery", "Non-config recovery", "User-action"},
		{"Modem-based", "device-side only", "not supported", "timer-based retry", "not supported"},
		{"OS-based", "device-side only", "not supported", "layer-by-layer retry", "not supported"},
		{"App-based", "device-side only", "not supported", "transport reconnect", "not supported"},
		{"Infra-based", "infra-side only", "infra-side updates", "wait for device retry", "notification"},
		{"SEED", "both sides", "both-side updates", "multi-tier reset", "notification"},
	}
	var b strings.Builder
	b.WriteString("Table 2: comparison of 5G failure diagnosis/handling solutions\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %-18s %-20s %-22s %-14s\n", r[0], r[1], r[2], r[3], r[4])
	}
	return b.String()
}

// table3 prints the live decision table (the SEED applet's handling map).
func table3() string {
	rows := [][]string{
		{"Diagnosis Class", "SEED-U (no root)", "SEED-R (root)"},
		{"Control-plane causes", "A1 SIM profile reload", "B1 modem reset"},
		{"Control-plane causes w/ config", "A2+A1 config update & reload", "B2 reattach with update"},
		{"Data-plane causes", "A1 SIM profile reload", "B3 data-plane reset"},
		{"Data-plane causes w/ config", "A3 config update", "B3 data-plane modification"},
		{"Data delivery (app/OS report)", "A3 config update", "B3 reset / modification"},
	}
	var b strings.Builder
	b.WriteString("Table 3: failure handling decisions with diagnosis results\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-32s %-30s %-28s\n", r[0], r[1], r[2])
	}
	return b.String()
}
