// Package seed is a faithful software reproduction of "SEED: A SIM-Based
// Solution to 5G Failures" (Zhao et al., SIGCOMM 2022). It bundles a
// complete emulated 5G testbed — SIM/eSIM card runtime, modem with
// standard-compliant state machines and timers, Android-style data-stall
// detection and recovery, a gNB+AMF+SMF+UPF+UDM core network, application
// traffic emulators — together with SEED itself: the SIM applet, carrier
// app, core-network plugin, real-time SIM↔infrastructure collaboration
// channel, multi-tier reset actions, and collaborative online learning.
//
// Everything runs on a deterministic discrete-event clock: experiments
// that span hours of protocol time finish in milliseconds of wall time
// and are exactly reproducible for a given seed.
//
// The quickest way in:
//
//	tb := seed.New(1)
//	dev := tb.NewDevice(seed.ModeSEEDR)
//	dev.Start()
//	tb.Advance(30 * time.Second)       // device attaches, session up
//	tb.DesyncIdentity(dev)             // inject a Table-1 failure
//	tb.SimulateMobility(dev)           // ...that manifests on mobility
//	tb.Advance(time.Minute)            // SEED diagnoses and recovers
//
// The Experiment functions regenerate every table and figure of the
// paper's evaluation section; see EXPERIMENTS.md for the index.
package seed

import (
	"fmt"
	"time"

	"github.com/seed5g/seed/internal/core"
	"github.com/seed5g/seed/internal/core5g"
	"github.com/seed5g/seed/internal/dataplane"
	"github.com/seed5g/seed/internal/modem"
	"github.com/seed5g/seed/internal/nas"
	"github.com/seed5g/seed/internal/sched"
	"github.com/seed5g/seed/internal/sim"
)

// Mode selects a device's failure-handling stack.
type Mode int

const (
	// ModeLegacy is the baseline: stock modem timers plus the Android
	// detection/recovery ladder — no SEED.
	ModeLegacy Mode = iota + 1
	// ModeSEEDU runs SEED without root privilege (proactive-command and
	// carrier-app reset paths).
	ModeSEEDU
	// ModeSEEDR runs SEED with root privilege (AT-command fast paths).
	ModeSEEDR
)

func (m Mode) String() string {
	switch m {
	case ModeLegacy:
		return "Legacy"
	case ModeSEEDU:
		return "SEED-U"
	case ModeSEEDR:
		return "SEED-R"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

func (m Mode) deviceMode() core.DeviceMode {
	switch m {
	case ModeSEEDU:
		return core.SEEDU
	case ModeSEEDR:
		return core.SEEDR
	default:
		return core.Legacy
	}
}

// AppKind selects one of the five emulated application profiles (§7.1.2).
type AppKind int

const (
	AppVideo AppKind = iota + 1
	AppLiveStream
	AppWeb
	AppNavigation
	AppEdgeAR
)

func (k AppKind) String() string { return k.inner().String() }

func (k AppKind) inner() dataplane.AppKind {
	switch k {
	case AppVideo:
		return dataplane.Video
	case AppLiveStream:
		return dataplane.LiveStream
	case AppWeb:
		return dataplane.Web
	case AppNavigation:
		return dataplane.Navigation
	case AppEdgeAR:
		return dataplane.EdgeAR
	default:
		panic(fmt.Sprintf("seed: unknown AppKind %d", int(k)))
	}
}

// AppKinds lists all five application profiles in Table 5 order.
var AppKinds = []AppKind{AppVideo, AppLiveStream, AppWeb, AppNavigation, AppEdgeAR}

// Buffer returns the app's playback buffer (masks short outages).
func (k AppKind) Buffer() time.Duration { return dataplane.Spec(k.inner()).Buffer }

// Testbed is the emulated testbed of Figure 10: one core network (with the
// SEED infrastructure plugin attached), an emulated internet, and any
// number of devices.
type Testbed struct {
	kern     *sched.Kernel
	net      *core5g.Network
	plugin   *core.InfraPlugin
	internet *dataplane.Internet

	carrierKey [16]byte
	devices    []*Device
	seq        int

	cells *core5g.Cells
	// rfJitter, when set, is applied to every new device's radio link (the
	// workload generator's RF-degradation profiles).
	rfJitter time.Duration
	// rfWindows schedules radio loss/partition windows on every new
	// device's link (the workload generator's scheduled RF profiles).
	rfWindows []RFWindow
	// instrument, when set, attaches decision tracing, counterfactual
	// overrides, and policy knobs to every new SEED device.
	instrument *Instrument
}

// Instrument bundles the decision-trace subsystem's hooks: a tracer
// receiving structured Algorithm 1 decision events, a counterfactual
// action override, and the policy knobs (applet timers/trial order,
// learner rate) a replay applies to every SEED device it creates. A nil
// *Instrument is the zero-overhead TraceOff configuration.
type Instrument struct {
	// Tracer receives every decision event (core.TraceLevel filtering is
	// the tracer's concern). Must be a pure observer: no RNG, no state.
	Tracer core.DecisionTracer
	// Override is the counterfactual hook applied at each execution
	// decision (see core.ActionOverride).
	Override core.ActionOverride
	// Applet mutates each new SEED device's applet config before the
	// device is built (policy timers and trial order).
	Applet func(*core.AppletConfig)
	// LearnerLR overrides the infrastructure learner's rate (0 keeps the
	// paper's default).
	LearnerLR float64
}

// SetInstrument attaches inst to the testbed: the infrastructure plugin
// is instrumented immediately, devices as they are created. Call before
// NewDevice. Passing nil detaches the plugin tracer.
func (tb *Testbed) SetInstrument(inst *Instrument) {
	tb.instrument = inst
	if inst == nil {
		tb.plugin.SetDecisionTracer(nil)
		return
	}
	tb.plugin.SetDecisionTracer(inst.Tracer)
	if inst.LearnerLR > 0 {
		tb.plugin.Learner.LR = inst.LearnerLR
	}
}

// New creates a testbed whose randomness derives from seed.
func New(seedVal int64) *Testbed {
	k := sched.New(seedVal)
	net := core5g.NewNetwork(k, core5g.DefaultNetworkConfig())
	tb := &Testbed{
		kern:     k,
		net:      net,
		plugin:   core.NewInfraPlugin(k, net),
		internet: dataplane.NewInternet(k, net.UPF),
	}
	copy(tb.carrierKey[:], "seed-carrier-key")
	return tb
}

// Now returns the current virtual time.
func (tb *Testbed) Now() time.Duration { return tb.kern.Now() }

// Kernel exposes the testbed's event kernel for white-box tooling (the
// adversary engine quiesces the simulation and asserts the timer set
// drains). Production experiments should stay on Advance/RunUntil.
func (tb *Testbed) Kernel() *sched.Kernel { return tb.kern }

// Network exposes the emulated core network for white-box tooling: the
// adversary engine injects mutated uplink NAS at the AMF boundary and
// scrambles UE context to provoke out-of-state deliveries.
func (tb *Testbed) Network() *core5g.Network { return tb.net }

// Plugin exposes the infrastructure-side SEED plugin so white-box tooling
// can keep forwarding record uploads after wrapping a device's record
// sink.
func (tb *Testbed) Plugin() *core.InfraPlugin { return tb.plugin }

// Core exposes the device's internal assembly — modem, card, monitor,
// applet, radio — for white-box tooling that taps and injects below the
// public API.
func (d *Device) Core() *core.Device { return d.inner }

// Advance runs the simulation for d of virtual time.
func (tb *Testbed) Advance(d time.Duration) { tb.kern.RunFor(d) }

// RunUntil executes events until the predicate holds or the deadline
// passes, checking after every event. It reports whether the predicate
// was satisfied.
func (tb *Testbed) RunUntil(pred func() bool, deadline time.Duration) bool {
	limit := tb.kern.Now() + deadline
	for tb.kern.Now() < limit {
		if pred() {
			return true
		}
		if !tb.kern.Step() {
			break
		}
	}
	return pred()
}

// After schedules fn at virtual-time offset d (for scripting scenarios).
func (tb *Testbed) After(d time.Duration, fn func()) { tb.kern.After(d, fn) }

// Devices returns a copy of the devices created so far. Hot loops should
// prefer EachDevice, which iterates without copying.
func (tb *Testbed) Devices() []*Device { return append([]*Device(nil), tb.devices...) }

// EachDevice calls yield for every device in creation order, stopping
// early if yield returns false. Unlike Devices it performs no allocation.
// Devices added during iteration are not visited.
func (tb *Testbed) EachDevice(yield func(*Device) bool) {
	for _, d := range tb.devices {
		if !yield(d) {
			return
		}
	}
}

// NumDevices returns the number of devices created so far.
func (tb *Testbed) NumDevices() int { return len(tb.devices) }

// SetCongestion toggles the infrastructure congestion-warning path: while
// on, SEED diagnosis deliveries tell SIMs to wait instead of resetting.
func (tb *Testbed) SetCongestion(on bool, wait time.Duration) {
	tb.plugin.SetCongestion(on, uint16(wait/time.Second))
}

// CoreSignalingLoad returns the total NAS messages the core processed.
func (tb *Testbed) CoreSignalingLoad() int { return tb.net.SignalingLoad() }

// EnableCells turns the testbed into an n-cell deployment sharing one
// core. contextLossProb is the chance a handover's context transfer fails
// (producing the §2 identity-desync failures). Call before creating
// devices.
func (tb *Testbed) EnableCells(n int, contextLossProb float64) {
	if tb.cells == nil {
		tb.cells = core5g.NewCells(tb.kern, tb.net, n)
	}
	tb.cells.ContextLossProb = contextLossProb
}

// SetEdgeContextLoss overrides the handover context-loss probability for
// the directed cell edge from → to (call after EnableCells). Edges
// without an override keep the global probability.
func (tb *Testbed) SetEdgeContextLoss(from, to int, p float64) {
	if tb.cells != nil {
		tb.cells.SetEdgeContextLoss(from, to, p)
	}
}

// ServingCell returns the cell currently serving the device (0 before
// EnableCells or any handover).
func (tb *Testbed) ServingCell(d *Device) int {
	if tb.cells == nil {
		return 0
	}
	return tb.cells.ServingCell(d.IMSI())
}

// Handover moves the device to the target cell and triggers its mobility
// registration in the new tracking area. With forceContextLoss (or per
// the configured probability) the core loses the UE context in transit.
// It reports whether the context transfer survived.
func (tb *Testbed) Handover(d *Device, cell int, forceContextLoss bool) bool {
	if tb.cells == nil {
		return false
	}
	okHO, err := tb.cells.Handover(d.IMSI(), cell, forceContextLoss)
	if err != nil {
		return false
	}
	d.inner.Mdm.SimulateMobility()
	return okHO
}

// Handovers returns (handovers performed, context transfers lost).
func (tb *Testbed) Handovers() (int, int) {
	if tb.cells == nil {
		return 0, 0
	}
	return tb.cells.Stats()
}

// RFWindow is one scheduled radio-impairment window: from At for Dur the
// device's radio link either drops frames with probability Loss or is
// fully partitioned (the workload generator's scheduled RF profiles).
type RFWindow struct {
	At  time.Duration
	Dur time.Duration
	// Loss is the per-frame drop probability while the window is open
	// (ignored when Partition is set).
	Loss float64
	// Partition takes the link fully down for the window.
	Partition bool
}

// SetRFWindows schedules radio loss/partition windows for every device
// created afterwards. Offsets are relative to device creation.
func (tb *Testbed) SetRFWindows(ws []RFWindow) { tb.rfWindows = ws }

// scheduleRFWindows arms a new device's radio-impairment windows.
func (tb *Testbed) scheduleRFWindows(inner *core.Device) {
	tb.armRFWindows(inner, tb.rfWindows)
}

// armRFWindows schedules ws on the device's radio relative to the current
// virtual time (device creation for fresh cells, the post-boot instant for
// cloned ones). Windows close back to a healthy link (loss 0 / up);
// overlapping windows are not merged — the last transition wins, matching
// the declarative spec's validated non-overlapping windows.
func (tb *Testbed) armRFWindows(inner *core.Device, ws []RFWindow) {
	for _, w := range ws {
		w := w
		radio := inner.Radio
		tb.kern.After(w.At, func() {
			if w.Partition {
				radio.SetDown(true)
			} else {
				radio.SetLoss(w.Loss)
			}
		})
		tb.kern.After(w.At+w.Dur, func() {
			if w.Partition {
				radio.SetDown(false)
			} else {
				radio.SetLoss(0)
			}
		})
	}
}

// DeviceOption customizes a device at creation.
type DeviceOption func(*core.DeviceConfig)

// WithAndroidRecommendedTimers applies the 21 s/6 s/16 s recovery-action
// intervals the paper uses as its tuned baseline.
func WithAndroidRecommendedTimers() DeviceOption {
	return func(c *core.DeviceConfig) {
		c.Android.ActionIntervals = []time.Duration{
			21 * time.Second, 6 * time.Second, 16 * time.Second,
		}
	}
}

// WithStaleDNN makes the device's SIM profile carry dnn instead of the
// subscription default (the outdated-configuration failure injections).
func WithStaleDNN(dnn string) DeviceOption {
	return func(c *core.DeviceConfig) { c.Profile.DNN = dnn }
}

// WithProactiveAT enables the §9 rootless-SEED-R extension: the modem
// supports the TS 102 223 RUN AT COMMAND proactive command, so a SEED-U
// device can drive the fast B-tier resets without root on the phone.
func WithProactiveAT() DeviceOption {
	return func(c *core.DeviceConfig) { c.Applet.UseProactiveAT = true }
}

// WithNaiveFullReset replaces SEED's targeted multi-tier decision with an
// always-reset-everything policy (an ablation arm: every diagnosis
// triggers the hardware tier).
func WithNaiveFullReset() DeviceOption {
	return func(c *core.DeviceConfig) { c.Applet.NaiveFullReset = true }
}

// NewDevice provisions a subscriber and builds a device of the given mode
// attached to the testbed network. The subscription's default DNN is
// "internet" with the carrier LDNS.
func (tb *Testbed) NewDevice(mode Mode, opts ...DeviceOption) *Device {
	tb.seq++
	imsi := fmt.Sprintf("310170%09d", tb.seq)
	var k, op [16]byte
	copy(k[:], imsi+"-key-material-")
	copy(op[:], "seed-operator-op")

	sub := &core5g.Subscriber{
		IMSI: imsi, K: k, OP: op,
		Authorized: true, PlanActive: true,
		SEEDEnabled: mode != ModeLegacy,
		DefaultDNN:  "internet",
		AllowedDNNs: []string{"internet", "ims"},
		Sessions: map[string]core5g.SessionConfig{
			"internet": {DNS: []nas.Addr{core5g.LDNSAddr}, QoS: nas.QoS{FiveQI: 9, UplinkKbps: 100000, DownKbps: 500000}},
			"ims":      {DNS: []nas.Addr{core5g.LDNSAddr}, QoS: nas.QoS{FiveQI: 5}},
		},
	}
	if err := tb.net.UDM.AddSubscriber(sub); err != nil {
		panic(fmt.Sprintf("seed: provisioning %s: %v", imsi, err))
	}

	cfg := core.DefaultDeviceConfig(imsi, sim.Profile{
		IMSI: imsi, K: k, OP: op,
		PLMNs: []uint32{modem.ServingPLMN},
		DNN:   "internet",
		DNS:   [][4]byte{core5g.LDNSAddr},
		SST:   1,
	}, tb.carrierKey, mode.deviceMode())
	for _, opt := range opts {
		opt(&cfg)
	}
	if tb.instrument != nil && tb.instrument.Applet != nil && mode != ModeLegacy {
		tb.instrument.Applet(&cfg.Applet)
	}
	inner, err := core.NewDevice(tb.kern, cfg, tb.net)
	if err != nil {
		panic(fmt.Sprintf("seed: building device %s: %v", imsi, err))
	}
	// Default OTA record destination: the in-process infrastructure
	// plugin. A fleet deployment replaces this sink with a networked
	// carrier-service client (internal/fleet) — same upload code path.
	inner.CApp.SetRecordSink(func(blob []byte) {
		_ = tb.plugin.ReceiveRecordUpload(blob)
	})
	if tb.cells != nil {
		// Re-home the radio through the cell manager: uplink goes to the
		// serving gNB of the moment, and handovers re-attach the
		// downlink transparently.
		tb.net.GNB.DetachUE(imsi)
		tb.cells.Register(imsi, inner.Radio.B2A.Send)
		inner.Radio.SetHandlers(func(frame any) {
			tb.cells.ServingGNB(imsi).HandleUplink(frame)
		}, inner.Mdm.HandleDownlink)
	}
	if tb.rfJitter > 0 {
		inner.Radio.SetJitter(tb.rfJitter)
	}
	tb.scheduleRFWindows(inner)
	if tb.instrument != nil && inner.Applet != nil {
		if tb.instrument.Tracer != nil {
			inner.Applet.SetDecisionTracer(tb.instrument.Tracer, imsi)
		}
		if tb.instrument.Override != nil {
			inner.Applet.SetActionOverride(tb.instrument.Override)
		}
	}
	d := &Device{tb: tb, inner: inner, mode: mode}
	// Hooks dispatch through slices so injections and user code can both
	// observe events without clobbering each other.
	inner.OnReject = func(epd byte, code uint8) {
		for _, fn := range d.rejectFns {
			fn(epd, code)
		}
	}
	inner.OnConnectivity = func(up bool) {
		for _, fn := range d.connFns {
			fn(up)
		}
	}
	inner.OnUserNotice = func(text string) {
		for _, fn := range d.noticeFns {
			fn(text)
		}
	}
	inner.OnProfileReload = func() {
		for _, fn := range d.reloadFns {
			fn()
		}
	}
	tb.devices = append(tb.devices, d)
	return d
}

// Device is one emulated handset on the testbed.
type Device struct {
	tb    *Testbed
	inner *core.Device
	mode  Mode

	rejectFns []func(epd byte, code uint8)
	connFns   []func(bool)
	noticeFns []func(string)
	reloadFns []func()
}

// IMSI returns the device's subscriber identity.
func (d *Device) IMSI() string { return d.inner.Cfg.IMSI }

// Mode returns the device's failure-handling mode.
func (d *Device) Mode() Mode { return d.mode }

// Start powers the device on; it registers and establishes its data
// session autonomously.
func (d *Device) Start() { d.inner.Start() }

// Connected reports whether the device has a working data session.
func (d *Device) Connected() bool { return d.inner.Connected() }

// Registered reports whether the modem is registered.
func (d *Device) Registered() bool {
	return d.inner.Mdm.State() == modem.StateRegistered
}

// State returns the modem's 5GMM state name.
func (d *Device) State() string { return d.inner.Mdm.State().String() }

// OnConnectivity registers a hook fired on data-connectivity transitions.
// Hooks accumulate; each registered hook fires on every transition.
func (d *Device) OnConnectivity(fn func(up bool)) {
	d.connFns = append(d.connFns, fn)
}

// OnUserNotice registers a hook for SEED's user notifications.
func (d *Device) OnUserNotice(fn func(text string)) {
	d.noticeFns = append(d.noticeFns, fn)
}

// OnReject registers a hook fired with every standardized reject cause
// the device receives; controlPlane distinguishes 5GMM from 5GSM causes.
func (d *Device) OnReject(fn func(controlPlane bool, code uint8)) {
	d.rejectFns = append(d.rejectFns, func(epd byte, code uint8) {
		fn(epd == nas.EPD5GMM, code)
	})
}

// OnProfileReload registers a hook fired whenever the modem (re)reads the
// SIM profile.
func (d *Device) OnProfileReload(fn func()) {
	d.reloadFns = append(d.reloadFns, fn)
}

// OnSignaling registers a trace hook fired for every NAS message the
// device sends (sent=true) or receives, with its human-readable name.
func (d *Device) OnSignaling(fn func(sent bool, name string)) {
	prev := d.inner.OnNAS
	d.inner.OnNAS = func(sent bool, msg nas.Message) {
		if prev != nil {
			prev(sent, msg)
		}
		fn(sent, nas.Name(msg.EPD(), msg.MessageType()))
	}
}

// AddApp installs an application traffic emulator.
func (d *Device) AddApp(kind AppKind) *App {
	return &App{inner: d.inner.AddApp(kind.inner()), kind: kind}
}

// Reboot power-cycles the modem.
func (d *Device) Reboot() { d.inner.Mdm.Reboot() }

// FastDataReset runs the Fig 6 data-plane reset directly (a DIAG session
// holds the radio bearer while the data session cycles; no reattach).
func (d *Device) FastDataReset() { d.inner.CApp.FastDataReset() }

// RunAT executes an AT command on the modem (for scripting; SEED-R uses
// this path internally).
func (d *Device) RunAT(cmd string) (string, error) { return d.inner.Mdm.Execute(cmd) }

// SIMOperations returns the total SIM operations performed (the energy
// model input).
func (d *Device) SIMOperations() int {
	st := d.inner.Card.Stats()
	return st.APDUs + st.AuthOps + st.Envelopes + st.Proactives
}

// DiagnosesReceived returns how many SEED diagnosis messages the SIM
// applet consumed (0 in legacy mode).
func (d *Device) DiagnosesReceived() int {
	if d.inner.Applet == nil {
		return 0
	}
	return d.inner.Applet.Stats().DiagsReceived
}

// Decisions returns how many Algorithm 1 execution decisions the applet
// made — the counterfactual pin space (0 in legacy mode).
func (d *Device) Decisions() int {
	if d.inner.Applet == nil {
		return 0
	}
	return d.inner.Applet.Decisions()
}

// ActionCounts returns the multi-tier reset actions executed, keyed by
// action name (empty in legacy mode).
func (d *Device) ActionCounts() map[string]int {
	out := map[string]int{}
	if d.inner.Applet == nil {
		return out
	}
	for a, n := range d.inner.Applet.Stats().Actions {
		out[a.String()] = n
	}
	return out
}

// UserNoticeCount returns how many user-action notifications SEED raised.
func (d *Device) UserNoticeCount() int {
	if d.inner.Applet == nil {
		return 0
	}
	return d.inner.Applet.Stats().UserNotices
}

// Reboots returns the modem reboot count (legacy ladder escalations and
// SEED B1 resets).
func (d *Device) Reboots() int { return d.inner.Mdm.Stats().Reboots }

// App is an application traffic emulator bound to a device.
type App struct {
	inner *dataplane.App
	kind  AppKind
}

// Kind returns the application profile.
func (a *App) Kind() AppKind { return a.kind }

// Start begins traffic generation.
func (a *App) Start() { a.inner.Start() }

// Stop halts traffic generation.
func (a *App) Stop() { a.inner.Stop() }

// OnSuccess registers a hook fired on each successful app response.
func (a *App) OnSuccess(fn func()) { a.inner.OnSuccess = fn }

// LastSuccess returns the virtual time of the last successful response
// (negative before any).
func (a *App) LastSuccess() time.Duration { return a.inner.LastSuccess() }

// Requests returns (sent, succeeded, failed, reported) counters.
func (a *App) Requests() (sent, ok, failed, reported int) {
	st := a.inner.Stats()
	return st.Requests, st.Successes, st.Failures, st.Reports
}
