package fleet

import (
	"bytes"
	"fmt"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/core"
	"github.com/seed5g/seed/internal/report"
)

// startServer runs a quiet server on a free loopback port and returns it
// with a pooled client. Shutdown order (client first) mirrors real use.
func startServer(t *testing.T, cfg ServerConfig) (*Server, *Client) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	srv := NewServer(cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cl := NewClient(ClientConfig{Addr: srv.Addr().String(), Conns: 2})
	t.Cleanup(func() {
		cl.Close()
		_ = srv.Shutdown()
	})
	return srv, cl
}

func deviceRecords(i int) map[cause.Cause]map[core.ActionID]int {
	c := cause.MM(cause.Code(150 + i%3))
	a := core.LearningOrder[i%len(core.LearningOrder)]
	return map[cause.Cause]map[core.ActionID]int{c: {a: 1 + i%2}}
}

// TestFleetEndToEnd drives devices through upload → report → query and
// checks the aggregate model is byte-identical to a sequential in-process
// fold, the suggestion round trip opens, and nothing was dropped.
func TestFleetEndToEnd(t *testing.T) {
	srv, cl := startServer(t, ServerConfig{Shards: 3, QueueDepth: 8})

	const devices = 40
	baseline := core.NewLearner(0.1, rand.New(rand.NewSource(1)))
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		recs := deviceRecords(i)
		baseline.Crowdsource(recs)
		wg.Add(1)
		go func(i int, recs map[cause.Cause]map[core.ActionID]int) {
			defer wg.Done()
			dev := NewSimDevice(DefaultMasterKey, fmt.Sprintf("00101%010d", i))
			sealed, err := dev.SealRecords(core.MarshalRecords(recs))
			if err == nil {
				err = cl.UploadRecords(dev.IMSI, sealed)
			}
			if err != nil {
				t.Errorf("device %d upload: %v", i, err)
				return
			}
			rep := report.FailureReport{Type: report.FailDNS, Direction: report.DirBoth, Domain: "x.test"}
			sr, err := dev.SealReport(rep.Marshal())
			if err == nil {
				err = cl.Report(dev.IMSI, sr)
			}
			if err != nil {
				t.Errorf("device %d report: %v", i, err)
			}
		}(i, recs)
	}
	wg.Wait()

	got, err := cl.FetchModel()
	if err != nil {
		t.Fatal(err)
	}
	want := MarshalModel(baseline.Export())
	if !bytes.Equal(got, want) {
		t.Fatalf("aggregate model differs: server %d bytes, baseline %d bytes", len(got), len(want))
	}

	// Model-push leg: the hottest cause must come back as a sealed
	// suggestion the device can open.
	dev := NewSimDevice(DefaultMasterKey, "001010000000000")
	m, ok, err := dev.QuerySuggestion(cl, cause.MM(150))
	if err != nil || !ok {
		t.Fatalf("query: ok=%v err=%v", ok, err)
	}
	if m.Kind != core.DiagSuggestAction || m.Code != 150 {
		t.Fatalf("suggestion %+v", m)
	}
	// A cause nobody reported → abstain, not an error.
	if _, ok, err := dev.QuerySuggestion(cl, cause.SM(250)); err != nil || ok {
		t.Fatalf("expected abstain, got ok=%v err=%v", ok, err)
	}

	st := srv.Stats()
	if st.Uploads != devices || st.Reports != devices || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
}

// TestFleetDuplicateUploadIdempotent replays the exact sealed bytes of an
// acknowledged upload (a client retry after a lost ack) and checks the
// server acks without folding twice.
func TestFleetDuplicateUploadIdempotent(t *testing.T) {
	srv, cl := startServer(t, ServerConfig{Shards: 2})

	dev := NewSimDevice(DefaultMasterKey, "001010000000099")
	sealed, err := dev.SealRecords(core.MarshalRecords(deviceRecords(7)))
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.UploadRecords(dev.IMSI, sealed); err != nil {
		t.Fatal(err)
	}
	before, _ := cl.FetchModel()
	for i := 0; i < 3; i++ {
		if err := cl.UploadRecords(dev.IMSI, sealed); err != nil {
			t.Fatalf("retry %d: %v", i, err)
		}
	}
	after, _ := cl.FetchModel()
	if !bytes.Equal(before, after) {
		t.Fatal("duplicate upload changed the model")
	}
	st := srv.Stats()
	if st.Uploads != 1 || st.Duplicates != 3 {
		t.Fatalf("uploads=%d duplicates=%d", st.Uploads, st.Duplicates)
	}
}

// TestFleetTamperedUploadRejected flips a ciphertext bit and expects a
// server error (integrity), with the connection still usable after.
func TestFleetTamperedUploadRejected(t *testing.T) {
	_, cl := startServer(t, ServerConfig{Shards: 1})

	dev := NewSimDevice(DefaultMasterKey, "001010000000003")
	sealed, err := dev.SealRecords(core.MarshalRecords(deviceRecords(1)))
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]byte(nil), sealed...)
	tampered[len(tampered)-1] ^= 0xFF
	if err := cl.UploadRecords(dev.IMSI, tampered); err == nil {
		t.Fatal("tampered upload accepted")
	} else if !strings.Contains(err.Error(), "integrity") {
		t.Fatalf("want integrity failure, got %v", err)
	}
	// The connection survives the error frame; a clean upload still works.
	dev2 := NewSimDevice(DefaultMasterKey, "001010000000004")
	sealed2, _ := dev2.SealRecords(core.MarshalRecords(deviceRecords(2)))
	if err := cl.UploadRecords(dev2.IMSI, sealed2); err != nil {
		t.Fatal(err)
	}
}

// TestFleetBackpressureNoLoss wedges a 1-deep queue on a single shard with
// concurrent uploads. Some must be backpressured; the client's RETRY-AFTER
// handling must still land every upload exactly once.
func TestFleetBackpressureNoLoss(t *testing.T) {
	srv, cl := startServer(t, ServerConfig{Shards: 1, QueueDepth: 1, RetryAfter: time.Millisecond})

	const devices = 32
	baseline := core.NewLearner(0.1, rand.New(rand.NewSource(1)))
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		recs := deviceRecords(i)
		baseline.Crowdsource(recs)
		wg.Add(1)
		go func(i int, recs map[cause.Cause]map[core.ActionID]int) {
			defer wg.Done()
			dev := NewSimDevice(DefaultMasterKey, fmt.Sprintf("00102%010d", i))
			sealed, err := dev.SealRecords(core.MarshalRecords(recs))
			if err == nil {
				err = cl.UploadRecords(dev.IMSI, sealed)
			}
			if err != nil {
				t.Errorf("device %d: %v", i, err)
			}
		}(i, recs)
	}
	wg.Wait()

	got, err := cl.FetchModel()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, MarshalModel(baseline.Export())) {
		t.Fatal("model diverged under backpressure")
	}
	if st := srv.Stats(); st.Uploads != devices || st.Dropped != 0 {
		t.Fatalf("stats %+v", st)
	}
	t.Logf("backpressured=%d retries=%d", srv.Stats().Backpressured, cl.Retries())
}

// TestFleetDrainAndSnapshotRestore shuts a server down mid-life, restarts
// on the same snapshot, and checks the model survived the restart and new
// uploads keep folding on top.
func TestFleetDrainAndSnapshotRestore(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "fleet.snap")

	cfg := ServerConfig{Addr: "127.0.0.1:0", Shards: 2, SnapshotPath: snap, Logf: func(string, ...any) {}}
	srv1 := NewServer(cfg)
	if err := srv1.Start(); err != nil {
		t.Fatal(err)
	}
	cl1 := NewClient(ClientConfig{Addr: srv1.Addr().String(), Conns: 1})
	dev := NewSimDevice(DefaultMasterKey, "001010000000010")
	sealed, _ := dev.SealRecords(core.MarshalRecords(deviceRecords(5)))
	if err := cl1.UploadRecords(dev.IMSI, sealed); err != nil {
		t.Fatal(err)
	}
	model1, err := cl1.FetchModel()
	if err != nil {
		t.Fatal(err)
	}
	cl1.Close()
	if err := srv1.Shutdown(); err != nil {
		t.Fatal(err)
	}

	srv2 := NewServer(cfg)
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = srv2.Shutdown() }()
	if !bytes.Equal(srv2.Model(), model1) {
		t.Fatal("restored model differs from pre-shutdown model")
	}

	// The restarted server keeps learning. A fresh device uploads; note the
	// restarted server has no envelope history, so a fresh envelope works.
	cl2 := NewClient(ClientConfig{Addr: srv2.Addr().String(), Conns: 1})
	defer cl2.Close()
	dev2 := NewSimDevice(DefaultMasterKey, "001010000000011")
	sealed2, _ := dev2.SealRecords(core.MarshalRecords(deviceRecords(6)))
	if err := cl2.UploadRecords(dev2.IMSI, sealed2); err != nil {
		t.Fatal(err)
	}
	model2, err := cl2.FetchModel()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(model2, model1) {
		t.Fatal("post-restart upload did not change the model")
	}
}

// TestFleetRejectsUnknownFrame checks an unexpected frame type gets a TErr
// without killing the server.
func TestFleetRejectsUnknownFrame(t *testing.T) {
	_, cl := startServer(t, ServerConfig{Shards: 1})
	if _, err := cl.Do("bogus", Frame{Type: TAck}); err == nil {
		t.Fatal("server answered a response-type frame")
	}
	if _, err := cl.FetchStats(); err != nil {
		t.Fatalf("server unusable after protocol error: %v", err)
	}
}
