package fleet

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/metrics"
)

// ClientConfig parameterizes the fleet client.
type ClientConfig struct {
	// Addr is the server address.
	Addr string
	// Conns bounds the connection pool. Connections are dialed lazily and
	// shared by all devices the client drives.
	Conns int
	// DialTimeout bounds connection establishment; RequestTimeout bounds
	// one round trip (write + read) on a connection.
	DialTimeout, RequestTimeout time.Duration
	// MaxRetries is the number of attempts per request beyond the first,
	// covering both transport errors and TRetryAfter backpressure.
	MaxRetries int
	// BackoffBase/BackoffMax shape the jittered exponential backoff used
	// after transport errors; TRetryAfter responses honor the server's
	// wait hint (plus jitter) instead.
	BackoffBase, BackoffMax time.Duration
	// MaxFrame bounds accepted response payloads.
	MaxFrame uint32
	// Seed seeds the backoff jitter (deterministic load patterns).
	Seed int64
}

func (c *ClientConfig) withDefaults() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 500 * time.Millisecond
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Client is a pooled fleet-protocol client with retry, backpressure
// handling, and a latency recorder.
type Client struct {
	cfg  ClientConfig
	pool chan *poolConn // nil entries are dial permits

	rngMu sync.Mutex
	rng   *rand.Rand

	latMu sync.Mutex
	lat   map[string]*metrics.Series

	retries, redials uint64 // latMu-guarded (low-rate counters)
}

type poolConn struct {
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer
}

// ErrServer wraps a TErr response.
var ErrServer = errors.New("fleet: server error")

// NewClient creates a client; connections are dialed on first use.
func NewClient(cfg ClientConfig) *Client {
	cfg.withDefaults()
	cl := &Client{
		cfg:  cfg,
		pool: make(chan *poolConn, cfg.Conns),
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		lat:  map[string]*metrics.Series{},
	}
	for i := 0; i < cfg.Conns; i++ {
		cl.pool <- nil // dial permit
	}
	return cl
}

// Close tears down all pooled connections.
func (cl *Client) Close() {
	for i := 0; i < cl.cfg.Conns; i++ {
		if pc := <-cl.pool; pc != nil {
			_ = pc.c.Close()
		}
	}
}

// checkout takes a pooled connection, dialing if the permit is unused.
// Cancelling ctx aborts both the wait for a pool slot and the dial.
func (cl *Client) checkout(ctx context.Context) (*poolConn, error) {
	var pc *poolConn
	select {
	case pc = <-cl.pool:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if pc != nil {
		return pc, nil
	}
	d := net.Dialer{Timeout: cl.cfg.DialTimeout}
	c, err := d.DialContext(ctx, "tcp", cl.cfg.Addr)
	if err != nil {
		cl.pool <- nil // return the permit
		return nil, err
	}
	return &poolConn{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}, nil
}

func (cl *Client) putBack(pc *poolConn, broken bool) {
	if broken {
		_ = pc.c.Close()
		cl.latMu.Lock()
		cl.redials++
		cl.latMu.Unlock()
		cl.pool <- nil
		return
	}
	cl.pool <- pc
}

// roundTrip performs one request/response exchange on a pooled connection.
// A context cancellation mid-exchange expires the conn's deadline, which
// unblocks the read/write; the conn is then discarded as broken (its
// stream position is unknowable).
func (cl *Client) roundTrip(ctx context.Context, req Frame) (Frame, error) {
	pc, err := cl.checkout(ctx)
	if err != nil {
		return Frame{}, err
	}
	deadline := time.Now().Add(cl.cfg.RequestTimeout)
	_ = pc.c.SetDeadline(deadline)
	stop := context.AfterFunc(ctx, func() { _ = pc.c.SetDeadline(time.Now()) })
	defer stop()
	if err := WriteFrame(pc.bw, req); err != nil {
		cl.putBack(pc, true)
		return Frame{}, cl.ctxErr(ctx, err)
	}
	resp, err := ReadFrame(pc.br, cl.cfg.MaxFrame)
	if err != nil {
		cl.putBack(pc, true)
		return Frame{}, cl.ctxErr(ctx, err)
	}
	cl.putBack(pc, false)
	return resp, nil
}

// ctxErr prefers the context's cause over the deadline error it induced.
func (cl *Client) ctxErr(ctx context.Context, err error) error {
	if ctx.Err() != nil {
		return ctx.Err()
	}
	return err
}

// Do performs a request with retries: transport errors back off
// exponentially with jitter, TRetryAfter honors the server's hint, and
// TErr fails immediately (the request itself is bad). The latency of the
// whole exchange — including backoff waits, what a device experiences —
// is recorded under op.
func (cl *Client) Do(op string, req Frame) (Frame, error) {
	return cl.DoCtx(context.Background(), op, req)
}

// DoCtx is Do with cancellation: the retry loop is hard-capped at
// MaxRetries extra attempts, and a cancelled/expired ctx returns promptly
// — it aborts backoff sleeps, pool waits, dials, and even an exchange
// blocked mid-read.
func (cl *Client) DoCtx(ctx context.Context, op string, req Frame) (Frame, error) {
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= cl.cfg.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return Frame{}, fmt.Errorf("fleet: %s cancelled after %d attempts: %w (last error: %v)", op, attempt, err, lastErr)
			}
			return Frame{}, err
		}
		if attempt > 0 {
			cl.latMu.Lock()
			cl.retries++
			cl.latMu.Unlock()
		}
		resp, err := cl.roundTrip(ctx, req)
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				continue // cancelled: loop exits at the top without sleeping
			}
			if err := cl.sleep(ctx, cl.backoff(attempt)); err != nil {
				continue
			}
			continue
		}
		switch resp.Type {
		case TRetryAfter:
			millis, err := ParseRetryAfter(resp.Payload)
			if err != nil {
				return Frame{}, err
			}
			lastErr = fmt.Errorf("fleet: backpressured (retry after %dms)", millis)
			_ = cl.sleep(ctx, time.Duration(millis)*time.Millisecond+cl.jitter(cl.cfg.BackoffBase))
			continue
		case TErr:
			return Frame{}, fmt.Errorf("%w: %s", ErrServer, resp.Payload)
		default:
			cl.record(op, time.Since(start))
			return resp, nil
		}
	}
	return Frame{}, fmt.Errorf("fleet: %s failed after %d attempts: %w", op, cl.cfg.MaxRetries+1, lastErr)
}

// backoff returns the jittered exponential wait for an attempt.
func (cl *Client) backoff(attempt int) time.Duration {
	d := cl.cfg.BackoffBase << uint(attempt)
	if d > cl.cfg.BackoffMax || d <= 0 {
		d = cl.cfg.BackoffMax
	}
	return d/2 + cl.jitter(d)
}

// jitter draws a uniform duration in [0, d/2).
func (cl *Client) jitter(d time.Duration) time.Duration {
	if d < 2 {
		return 0
	}
	cl.rngMu.Lock()
	j := time.Duration(cl.rng.Int63n(int64(d / 2)))
	cl.rngMu.Unlock()
	return j
}

// sleep waits d or until ctx is cancelled, whichever comes first.
func (cl *Client) sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (cl *Client) record(op string, d time.Duration) {
	cl.latMu.Lock()
	s := cl.lat[op]
	if s == nil {
		s = metrics.NewSeries(op)
		cl.lat[op] = s
	}
	s.Add(d)
	cl.latMu.Unlock()
}

// --- request surface -----------------------------------------------------

// UploadRecords ships a sealed learning-record blob for a device. It
// returns only after the server acknowledged the fold (or the duplicate).
func (cl *Client) UploadRecords(imsi string, sealed []byte) error {
	_, err := cl.Do("upload", Frame{Type: TUpload, Payload: AppendSealedPayload(nil, imsi, sealed)})
	return err
}

// Report ships a sealed failure report for a device.
func (cl *Client) Report(imsi string, sealed []byte) error {
	_, err := cl.Do("report", Frame{Type: TReport, Payload: AppendSealedPayload(nil, imsi, sealed)})
	return err
}

// Query asks the aggregate model for a suggestion (the model-push leg).
// It returns the raw sealed TSuggest payload (empty when the model
// abstains); the caller opens it with the device's envelope.
func (cl *Client) Query(imsi string, c cause.Cause) ([]byte, error) {
	resp, err := cl.Do("query", Frame{Type: TQuery, Payload: AppendQueryPayload(nil, imsi, c)})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// FetchModel pulls the canonical serialized aggregate model.
func (cl *Client) FetchModel() ([]byte, error) {
	resp, err := cl.Do("model", Frame{Type: TModelPull})
	if err != nil {
		return nil, err
	}
	return resp.Payload, nil
}

// FetchStats pulls the server counters.
func (cl *Client) FetchStats() (ServerStats, error) {
	var st ServerStats
	resp, err := cl.Do("stats", Frame{Type: TStatsPull})
	if err != nil {
		return st, err
	}
	if err := json.Unmarshal(resp.Payload, &st); err != nil {
		return st, fmt.Errorf("fleet: stats payload: %w", err)
	}
	return st, nil
}

// Retries returns how many request attempts were retries; Redials how
// many pooled connections were discarded after transport errors.
func (cl *Client) Retries() uint64 {
	cl.latMu.Lock()
	defer cl.latMu.Unlock()
	return cl.retries
}

// Redials returns the number of discarded-and-redialed pool connections.
func (cl *Client) Redials() uint64 {
	cl.latMu.Lock()
	defer cl.latMu.Unlock()
	return cl.redials
}

// Latency returns the recorded series for an op ("upload", "query", …),
// or nil when the op never completed. The series is shared — callers
// must not mutate it concurrently with in-flight requests.
func (cl *Client) Latency(op string) *metrics.Series {
	cl.latMu.Lock()
	defer cl.latMu.Unlock()
	return cl.lat[op]
}

// LatencySummary formats p50/p95/p99 for an op in milliseconds.
func (cl *Client) LatencySummary(op string) string {
	s := cl.Latency(op)
	if s == nil || s.Len() == 0 {
		return op + ": no samples"
	}
	return fmt.Sprintf("%s: n=%d p50=%.2fms p95=%.2fms p99=%.2fms",
		op, s.Len(),
		float64(s.Percentile(50))/float64(time.Millisecond),
		float64(s.Percentile(95))/float64(time.Millisecond),
		float64(s.Percentile(99))/float64(time.Millisecond))
}
