// Package runner is the parallel scenario executor behind the experiment
// suite. Every experiment in the paper's evaluation replays many
// independent scenario cells — each a fresh Testbed on its own
// single-threaded sched.Kernel — so the cells can fan out across worker
// goroutines while each cell stays perfectly deterministic.
//
// Determinism contract: a cell's behaviour must depend only on its index
// (seeds come from sched.DeriveSeed(rootSeed, cellKey), never from shared
// RNG state), results are either written to a per-index slot (Map) or
// folded into shard-local accumulators combined with a commutative merge
// (Collect). Under that contract the outcome is bit-for-bit identical for
// any worker count, including the sequential workers=1 path.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a scenario worker pool. The zero value is not usable; call New.
// A Pool carries no per-run state and may be shared by concurrent runs.
type Pool struct {
	workers int
}

// New returns a pool with the given worker count. workers <= 0 selects
// GOMAXPROCS, the natural width for CPU-bound simulation cells.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// run executes fn(i) for every i in [0, n), fanning across up to
// p.workers goroutines. Cells are claimed from a shared atomic counter,
// so stragglers don't serialize behind a fixed pre-partition.
func (p *Pool) run(n int, fn func(i int)) {
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn for every index in [0, n) on the pool and returns the
// results in index order. Each result lands in its own pre-allocated
// slot, so no synchronization or ordering sensitivity exists beyond the
// final barrier.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.run(n, func(i int) { out[i] = fn(i) })
	return out
}

// Collect runs cell for every index in [0, n), giving each worker its own
// accumulator from newAcc, then folds the shard accumulators with merge
// and returns the combined one. merge(dst, src) must be commutative and
// associative over the cell contributions (multiset semantics — e.g.
// appending samples to a series that sorts before quantile queries);
// under that requirement the result is independent of which worker
// happened to run which cell.
func Collect[A any](p *Pool, n int, newAcc func() A, cell func(i int, acc A), merge func(dst, src A)) A {
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		acc := newAcc()
		for i := 0; i < n; i++ {
			cell(i, acc)
		}
		return acc
	}
	accs := make([]A, w)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		accs[g] = newAcc()
		go func(acc A) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				cell(i, acc)
			}
		}(accs[g])
	}
	wg.Wait()
	for g := 1; g < w; g++ {
		merge(accs[0], accs[g])
	}
	return accs[0]
}
