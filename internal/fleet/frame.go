package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"github.com/seed5g/seed/internal/cause"
	"github.com/seed5g/seed/internal/core"
)

// The fleet wire protocol is length-prefixed binary frames over TCP:
//
//	MAGIC(2)=0x5E 0xED | VER(1)=1 | TYPE(1) | LEN(4, big-endian) | PAYLOAD
//
// Every request frame receives exactly one response frame on the same
// connection, so a connection carries any number of round trips in
// sequence and pools cleanly. LEN covers the payload only and is bounded
// by the decoder's max-frame limit — an oversized, truncated, or
// malformed frame is an error, never a panic (the 5Greplay property the
// fuzz tests enforce).

// FrameType identifies a fleet frame.
type FrameType uint8

const (
	// TUpload carries a device's sealed learning-record blob:
	// imsiLen(1) | imsi | sealed.
	TUpload FrameType = 0x01
	// TReport carries a sealed report.FailureReport: imsiLen(1) | imsi | sealed.
	TReport FrameType = 0x02
	// TQuery asks the model for a suggestion (the model-push leg):
	// imsiLen(1) | imsi | plane(1) | code(1).
	TQuery FrameType = 0x03
	// TModelPull requests the canonical serialized aggregate model (admin).
	TModelPull FrameType = 0x04
	// TStatsPull requests server counters as JSON (admin).
	TStatsPull FrameType = 0x05
	// TMapPull requests the node's current cluster shard map (admin).
	TMapPull FrameType = 0x06
	// TMapPrepare proposes the next-epoch shard map (rebalance phase 1):
	// the payload is cluster.Map bytes. The node freezes moved-out IMSIs
	// and answers TPrepared with their envelope counters.
	TMapPrepare FrameType = 0x07
	// TCounterInstall hands moved-in envelope counters to a new owner
	// (rebalance phase 2): the payload is a counter table. The install is
	// journaled before the TAck, so a crashed new owner still dedups
	// pre-move uploads after replay.
	TCounterInstall FrameType = 0x08
	// TMapCommit activates a prepared map (rebalance phase 3): the payload
	// is the epoch (8 bytes, BE). Committing an already-active epoch is an
	// idempotent TAck, so the controller can retry.
	TMapCommit FrameType = 0x09

	// TAck acknowledges an upload or report: the payload is folded.
	TAck FrameType = 0x81
	// TRetryAfter is the backpressure response, mirroring the paper's
	// congestion diagnosis: wait millis(4, BE) before retrying.
	TRetryAfter FrameType = 0x82
	// TSuggest answers a TQuery: a sealed DiagMessage (downlink direction),
	// or empty when the model abstains.
	TSuggest FrameType = 0x83
	// TModel answers a TModelPull with MarshalModel bytes.
	TModel FrameType = 0x84
	// TStats answers a TStatsPull with JSON counters.
	TStats FrameType = 0x85
	// TMap answers a TMapPull with the node's current cluster.Map bytes.
	TMap FrameType = 0x86
	// TPrepared answers a TMapPrepare with the moved-out counter table.
	TPrepared FrameType = 0x87
	// TWrongShard redirects a request for an IMSI this node does not own;
	// the payload is the node's current cluster.Map bytes so the client
	// can refresh its routing and retry the real owner.
	TWrongShard FrameType = 0x88
	// TErr reports a request failure; the payload is the message.
	TErr FrameType = 0xFF
)

func (t FrameType) String() string {
	switch t {
	case TUpload:
		return "upload"
	case TReport:
		return "report"
	case TQuery:
		return "query"
	case TModelPull:
		return "model-pull"
	case TStatsPull:
		return "stats-pull"
	case TMapPull:
		return "map-pull"
	case TMapPrepare:
		return "map-prepare"
	case TCounterInstall:
		return "counter-install"
	case TMapCommit:
		return "map-commit"
	case TAck:
		return "ack"
	case TRetryAfter:
		return "retry-after"
	case TSuggest:
		return "suggest"
	case TModel:
		return "model"
	case TStats:
		return "stats"
	case TMap:
		return "map"
	case TPrepared:
		return "prepared"
	case TWrongShard:
		return "wrong-shard"
	case TErr:
		return "err"
	default:
		return fmt.Sprintf("FrameType(%#02x)", uint8(t))
	}
}

const (
	frameMagic0 = 0x5E
	frameMagic1 = 0xED
	frameVer    = 1
	headerLen   = 8

	// DefaultMaxFrame bounds a frame payload. Record blobs are 5 bytes per
	// (cause, action) row and reports fit in well under 1 KiB sealed, so
	// 256 KiB leaves generous headroom for model pulls on big fleets.
	DefaultMaxFrame = 256 << 10

	// MaxIMSILen bounds the IMSI field of request payloads (15 digits per
	// E.212; allow headroom for test identities).
	MaxIMSILen = 32
)

// Frame is one decoded wire frame.
type Frame struct {
	Type    FrameType
	Payload []byte
}

// ErrFrameTooLarge is returned when a frame header announces a payload
// beyond the decoder's limit.
var ErrFrameTooLarge = errors.New("fleet: frame exceeds max size")

// AppendFrame appends the encoded frame to dst and returns it.
func AppendFrame(dst []byte, f Frame) []byte {
	dst = append(dst, frameMagic0, frameMagic1, frameVer, byte(f.Type))
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(f.Payload)))
	return append(dst, f.Payload...)
}

// WriteFrame encodes and writes one frame.
func WriteFrame(w *bufio.Writer, f Frame) error {
	var hdr [headerLen]byte
	hdr[0], hdr[1], hdr[2], hdr[3] = frameMagic0, frameMagic1, frameVer, byte(f.Type)
	binary.BigEndian.PutUint32(hdr[4:], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(f.Payload); err != nil {
		return err
	}
	return w.Flush()
}

// ReadFrame reads and validates one frame, rejecting bad magic, unknown
// versions, and payloads larger than maxFrame. It returns io.EOF only on
// a clean boundary (no bytes read); a frame truncated mid-way is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxFrame uint32) (Frame, error) {
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return Frame{}, err // io.EOF here is a clean close
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, err
	}
	if hdr[0] != frameMagic0 || hdr[1] != frameMagic1 {
		return Frame{}, fmt.Errorf("fleet: bad frame magic %#02x%02x", hdr[0], hdr[1])
	}
	if hdr[2] != frameVer {
		return Frame{}, fmt.Errorf("fleet: unsupported frame version %d", hdr[2])
	}
	n := binary.BigEndian.Uint32(hdr[4:])
	if n > maxFrame {
		return Frame{}, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, maxFrame)
	}
	f := Frame{Type: FrameType(hdr[3])}
	if n > 0 {
		f.Payload = make([]byte, n)
		if _, err := io.ReadFull(r, f.Payload); err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, err
		}
	}
	return f, nil
}

// --- request payload codecs ----------------------------------------------

// AppendSealedPayload encodes imsiLen(1) | imsi | sealed (TUpload/TReport).
func AppendSealedPayload(dst []byte, imsi string, sealed []byte) []byte {
	dst = append(dst, byte(len(imsi)))
	dst = append(dst, imsi...)
	return append(dst, sealed...)
}

// ParseSealedPayload decodes a TUpload/TReport payload.
func ParseSealedPayload(p []byte) (imsi string, sealed []byte, err error) {
	if len(p) < 1 {
		return "", nil, errors.New("fleet: empty sealed payload")
	}
	n := int(p[0])
	if n == 0 || n > MaxIMSILen {
		return "", nil, fmt.Errorf("fleet: bad IMSI length %d", n)
	}
	if len(p) < 1+n {
		return "", nil, fmt.Errorf("fleet: sealed payload truncated: IMSI needs %d bytes, have %d", n, len(p)-1)
	}
	return string(p[1 : 1+n]), p[1+n:], nil
}

// AppendQueryPayload encodes imsiLen(1) | imsi | plane(1) | code(1).
func AppendQueryPayload(dst []byte, imsi string, c cause.Cause) []byte {
	dst = append(dst, byte(len(imsi)))
	dst = append(dst, imsi...)
	return append(dst, byte(c.Plane), byte(c.Code))
}

// ParseQueryPayload decodes a TQuery payload.
func ParseQueryPayload(p []byte) (imsi string, c cause.Cause, err error) {
	if len(p) < 1 {
		return "", c, errors.New("fleet: empty query payload")
	}
	n := int(p[0])
	if n == 0 || n > MaxIMSILen {
		return "", c, fmt.Errorf("fleet: bad IMSI length %d", n)
	}
	if len(p) != 1+n+2 {
		return "", c, fmt.Errorf("fleet: query payload length %d, want %d", len(p), 1+n+2)
	}
	return string(p[1 : 1+n]), cause.Cause{Plane: cause.Plane(p[1+n]), Code: cause.Code(p[2+n])}, nil
}

// RetryAfterPayload encodes the backpressure wait hint.
func RetryAfterPayload(millis uint32) []byte {
	return binary.BigEndian.AppendUint32(nil, millis)
}

// ParseRetryAfter decodes a TRetryAfter payload.
func ParseRetryAfter(p []byte) (uint32, error) {
	if len(p) != 4 {
		return 0, fmt.Errorf("fleet: retry-after payload length %d, want 4", len(p))
	}
	return binary.BigEndian.Uint32(p), nil
}

// CounterEntry is one subscriber's envelope counter state: the entire
// mutable half of the sealed channel (the key is re-derived from the
// master key). Counter tables ride in TPrepared/TCounterInstall frames
// during rebalance handoff and in jInstall journal records.
type CounterEntry struct {
	IMSI string
	// Send and Recv are indexed by crypto5g.Direction (Uplink=0, Downlink=1).
	Send, Recv [2]uint32
}

// AppendCounterTable encodes entries as n(4, BE) then, per entry,
// imsiLen(1) | imsi | sendUp(4) sendDn(4) recvUp(4) recvDn(4). Entries
// are sorted by IMSI so equal tables produce equal bytes.
func AppendCounterTable(dst []byte, entries []CounterEntry) []byte {
	sort.Slice(entries, func(i, j int) bool { return entries[i].IMSI < entries[j].IMSI })
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(entries)))
	for _, e := range entries {
		dst = append(dst, byte(len(e.IMSI)))
		dst = append(dst, e.IMSI...)
		for _, c := range [4]uint32{e.Send[0], e.Send[1], e.Recv[0], e.Recv[1]} {
			dst = binary.BigEndian.AppendUint32(dst, c)
		}
	}
	return dst
}

// ParseCounterTable decodes an encoded counter table.
func ParseCounterTable(p []byte) ([]CounterEntry, error) {
	if len(p) < 4 {
		return nil, errors.New("fleet: counter table too short")
	}
	n := int(binary.BigEndian.Uint32(p))
	p = p[4:]
	entries := make([]CounterEntry, 0, n)
	for i := 0; i < n; i++ {
		if len(p) < 1 {
			return nil, fmt.Errorf("fleet: counter table truncated at entry %d", i)
		}
		l := int(p[0])
		if l == 0 || l > MaxIMSILen {
			return nil, fmt.Errorf("fleet: counter table entry %d: bad IMSI length %d", i, l)
		}
		if len(p) < 1+l+16 {
			return nil, fmt.Errorf("fleet: counter table truncated at entry %d", i)
		}
		e := CounterEntry{IMSI: string(p[1 : 1+l])}
		c := p[1+l:]
		e.Send[0] = binary.BigEndian.Uint32(c[0:4])
		e.Send[1] = binary.BigEndian.Uint32(c[4:8])
		e.Recv[0] = binary.BigEndian.Uint32(c[8:12])
		e.Recv[1] = binary.BigEndian.Uint32(c[12:16])
		entries = append(entries, e)
		p = p[1+l+16:]
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("fleet: %d trailing bytes after counter table", len(p))
	}
	return entries, nil
}

// EpochPayload encodes a TMapCommit epoch.
func EpochPayload(epoch uint64) []byte {
	return binary.BigEndian.AppendUint64(nil, epoch)
}

// ParseEpoch decodes a TMapCommit payload.
func ParseEpoch(p []byte) (uint64, error) {
	if len(p) != 8 {
		return 0, fmt.Errorf("fleet: epoch payload length %d, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}

// SuggestPayload converts a learner decision into the TSuggest plaintext:
// a core.DiagMessage of kind DiagSuggestAction, the same assistance shape
// the in-process AUTN channel delivers.
func SuggestPayload(c cause.Cause, a core.ActionID) []byte {
	return core.DiagMessage{
		Kind: core.DiagSuggestAction, Plane: c.Plane, Code: c.Code, Action: a,
	}.Marshal()
}
