package seed_test

import (
	"fmt"
	"time"

	seed "github.com/seed5g/seed"
)

// The canonical flow: build a testbed, attach a SEED device, inject the
// paper's headline failure, and watch it recover in seconds.
func Example() {
	tb := seed.New(42)
	dev := tb.NewDevice(seed.ModeSEEDR)
	dev.Start()
	tb.RunUntil(dev.Connected, time.Minute)

	tb.DesyncIdentity(dev)   // the network loses the UE context
	tb.SimulateMobility(dev) // the device re-registers with a stale GUTI
	onset := tb.Now()
	tb.RunUntil(func() bool { return tb.Now() > onset && dev.Connected() }, time.Minute)

	fmt.Printf("recovered in %.1fs\n", (tb.Now() - onset).Seconds())
	// Output: recovered in 3.3s
}

// Generating the §3.1 corpus and reading its headline statistic.
func ExampleGenerateDataset() {
	ds := seed.GenerateDataset(1)
	fmt.Printf("%d failures across %d procedures (%.1f%%)\n",
		len(ds.Failures()), ds.Procedures(), 100*ds.FailureRatio())
	// Output: 2832 failures across 24000 procedures (11.8%)
}

// Replaying one dataset case under two schemes.
func ExampleReplayManagement() {
	ds := seed.GenerateDataset(1)
	var fc seed.FailureCase
	for _, c := range ds.Failures() {
		if c.Scenario == seed.ScenarioDesync && c.ControlPlane {
			fc = c
			break
		}
	}
	legacy := seed.ReplayManagement(fc, seed.ModeLegacy, 7)
	seedR := seed.ReplayManagement(fc, seed.ModeSEEDR, 7)
	fmt.Printf("legacy recovers: %v (minutes); SEED-R: %v in %.1fs\n",
		legacy.Recovered, seedR.Recovered, seedR.Disruption.Seconds())
	// Output: legacy recovers: true (minutes); SEED-R: true in 3.3s
}

// The modes compared on a delivery failure (UDP blocking — invisible to
// Android, caught by SEED's app report API).
func ExampleReplayDelivery() {
	dc := seed.DeliveryCase{Kind: seed.DeliveryUDPBlock}
	legacy := seed.ReplayDelivery(dc, seed.ModeLegacy, 7)
	seedR := seed.ReplayDelivery(dc, seed.ModeSEEDR, 7)
	fmt.Printf("legacy detected: %v; SEED-R recovered: %v\n", legacy.Detected, seedR.Recovered)
	// Output: legacy detected: false; SEED-R recovered: true
}
