package trace

import (
	"math"
	"testing"
	"time"

	"github.com/seed5g/seed/internal/cause"
)

func TestGenerateCorpusShape(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	if ds.Procedures != 24000 {
		t.Fatalf("procedures = %d", ds.Procedures)
	}
	if len(ds.Failures) != 2832 {
		t.Fatalf("failures = %d", len(ds.Failures))
	}
	if r := ds.FailureRatio(); r < 0.10 || r > 0.13 {
		t.Fatalf("failure ratio = %.3f, paper reports >10%%", r)
	}
	if len(ds.Delivery) != 300 {
		t.Fatalf("delivery cases = %d", len(ds.Delivery))
	}
}

func TestGenerateIsDeterministic(t *testing.T) {
	a := Generate(DefaultGenConfig())
	b := Generate(DefaultGenConfig())
	for i := range a.Failures {
		if a.Failures[i] != b.Failures[i] {
			t.Fatalf("record %d differs across identical seeds", i)
		}
	}
	c := Generate(GenConfig{Seed: 2, Procedures: 24000, Failures: 2832, Delivery: 300})
	same := true
	for i := range a.Failures {
		if a.Failures[i] != c.Failures[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
}

func TestAnalysisMatchesTable1(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	a := Analyze(ds, 5)

	if math.Abs(a.ControlShare-0.562) > 0.02 {
		t.Fatalf("control share = %.3f, want ≈0.562", a.ControlShare)
	}
	if math.Abs(a.DataShare-0.438) > 0.02 {
		t.Fatalf("data share = %.3f, want ≈0.438", a.DataShare)
	}

	wantTop := map[cause.Cause]float64{
		cause.MM(cause.MMUEIdentityCannotBeDerived):   0.152,
		cause.MM(cause.MMNoSuitableCellsInTA):         0.126,
		cause.MM(cause.MMPLMNNotAllowed):              0.103,
		cause.MM(cause.MMNoEPSBearerContextActivated): 0.075,
		cause.MM(cause.MMMessageTypeNotCompatible):    0.028,
		cause.SM(cause.SMServiceOptionNotSubscribed):  0.079,
		cause.SM(cause.SMInvalidMandatoryInfo):        0.059,
		cause.SM(cause.SMUserAuthFailed):              0.047,
		cause.SM(cause.SMRequestRejectedUnspec):       0.026,
		cause.SM(cause.SMInsufficientResources):       0.019,
	}
	check := func(rows []CauseShare, plane cause.Plane) {
		for _, r := range rows {
			want, inTop := wantTop[r.Cause]
			if !inTop {
				continue
			}
			if math.Abs(r.Share-want) > 0.015 {
				t.Errorf("%v share = %.3f, want ≈%.3f", r.Cause, r.Share, want)
			}
		}
	}
	check(a.TopControl, cause.ControlPlane)
	check(a.TopData, cause.DataPlane)

	// The published #1 causes must rank first.
	if a.TopControl[0].Cause != cause.MM(cause.MMUEIdentityCannotBeDerived) {
		t.Fatalf("top control cause = %v", a.TopControl[0].Cause)
	}
	// The top data-plane cause by weight is SMMissingOrUnknownDNN spread
	// across two scenarios (0.075+0.024) or SMServiceOptionNotSubscribed;
	// both are plausible #1 — require one of them.
	top := a.TopData[0].Cause
	if top != cause.SM(cause.SMServiceOptionNotSubscribed) && top != cause.SM(cause.SMMissingOrUnknownDNN) {
		t.Fatalf("top data cause = %v", top)
	}
}

func TestScenarioAssignments(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	a := Analyze(ds, 5)
	for _, s := range []Scenario{ScenTransient, ScenDesync, ScenStaleConfigDevice,
		ScenStaleConfigEverywhere, ScenUserAction, ScenSilent} {
		if a.ByScenario[s] == 0 {
			t.Errorf("no cases with scenario %v", s)
		}
	}
	// User-action cases must be a small minority (the ~10.6 % + ~4.5 %
	// residue of §7.1.1).
	frac := float64(a.ByScenario[ScenUserAction]) / float64(a.Failures)
	if frac < 0.02 || frac > 0.12 {
		t.Fatalf("user-action fraction = %.3f", frac)
	}
}

func TestHealTimesOnlyWhereMeaningful(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	for _, r := range ds.Failures {
		switch r.Scenario {
		case ScenTransient, ScenSilent, ScenStaleConfigEverywhere:
			if r.Heal <= 0 {
				t.Fatalf("record %d (%v) has no heal time", r.ID, r.Scenario)
			}
		case ScenDesync, ScenStaleConfigDevice, ScenUserAction:
			if r.Heal != 0 {
				t.Fatalf("record %d (%v) has unexpected heal %v", r.ID, r.Scenario, r.Heal)
			}
		}
	}
}

func TestTransientHealDistribution(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	var heals []time.Duration
	for _, r := range ds.Failures {
		if r.Scenario == ScenTransient && r.Cause == cause.MM(cause.MMNoSuitableCellsInTA) {
			heals = append(heals, r.Heal)
		}
	}
	if len(heals) < 100 {
		t.Fatalf("too few transient samples: %d", len(heals))
	}
	var under2, over20 int
	for _, h := range heals {
		if h < 2*time.Second {
			under2++
		}
		if h > 20*time.Second {
			over20++
		}
	}
	// No-suitable-cells is the quick-retry class: a lognormal with median
	// 1.2 s puts most mass below 2 s (the sub-2 s recoveries of §3.2)
	// while keeping a tail above 20 s.
	if f := float64(under2) / float64(len(heals)); f < 0.4 || f > 0.85 {
		t.Fatalf("fraction under 2 s = %.2f", f)
	}
	if over20 == 0 {
		t.Fatal("no long-tail heal times")
	}
}

func TestDeliveryKindsMix(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	counts := map[DeliveryKind]int{}
	for _, r := range ds.Delivery {
		counts[r.Kind]++
	}
	for _, k := range []DeliveryKind{DeliveryTCPBlock, DeliveryUDPBlock, DeliveryDNSOutage, DeliveryStalledGateway} {
		if counts[k] < 20 {
			t.Errorf("delivery kind %v underrepresented: %d", k, counts[k])
		}
	}
}

func TestRenderTable1(t *testing.T) {
	ds := Generate(DefaultGenConfig())
	out := Analyze(ds, 5).RenderTable1()
	for _, want := range []string{
		"Table 1", "Control Plane", "Data Plane",
		"UE identity cannot be derived by the network",
		"Requested service option not subscribed",
	} {
		if !contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		(len(s) > 0 && indexOf(s, sub) >= 0))
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestScenarioAndKindStrings(t *testing.T) {
	if ScenTransient.String() != "transient" || ScenDesync.String() != "state-desync" {
		t.Fatal("Scenario strings drifted")
	}
	if DeliveryDNSOutage.String() != "dns-outage" {
		t.Fatal("DeliveryKind strings drifted")
	}
	if Scenario(99).String() == "" || DeliveryKind(99).String() == "" {
		t.Fatal("fallback strings empty")
	}
}
