package modem

import "github.com/seed5g/seed/internal/sim"

// fetchProactive drains the SIM's proactive command queue and executes
// each command (ETSI TS 102 223 terminal behaviour). This is the channel
// through which the SEED applet drives SEED-U's multi-tier resets on an
// unmodified modem.
func (m *Modem) fetchProactive() {
	for {
		cmd, okc := m.card.FetchProactive()
		if !okc {
			return
		}
		m.executeProactive(cmd)
	}
}

func (m *Modem) executeProactive(cmd sim.ProactiveCommand) {
	switch cmd.Type {
	case sim.ProactiveRefresh:
		switch cmd.Mode {
		case sim.RefreshInit, sim.RefreshUICCReset:
			// A1 "SIM profile reload": clear cached contexts (including
			// the possibly-stale GUTI — §4.4.1 "mismatched control-plane
			// states/identities are also refreshed"), re-initialize the
			// SIM application (the slow part on real cards), re-read the
			// profile, then detach and re-register.
			m.guti = ""
			if m.state == StateRegistered || m.state == StateRegistering {
				m.Deregister()
			}
			m.cancelRegTimer()
			m.k.After(m.cfg.RefreshInitTime, func() {
				m.refreshProfile(cmd.Files)
				if m.state == StateDeregistered {
					m.regAttempts = 0
					m.Attach()
				}
			})
		case sim.RefreshFileChange:
			// A2/A3 "config update": re-read just the changed EFs into the
			// modem cache without dropping the registration.
			m.refreshProfile(cmd.Files)
		}

	case sim.ProactiveRunATCommand:
		// The TS 102 223 RUN AT COMMAND path: when supported by the
		// modem, this is what makes SEED-R rootless (§9).
		_, _ = m.Execute(cmd.Text)

	case sim.ProactiveDisplayText:
		if m.hook.OnDisplayText != nil {
			m.hook.OnDisplayText(cmd.Text)
		}

	case sim.ProactiveProvideLocalInfo, sim.ProactiveSetUpMenu:
		// Informational; no modem state change.
	}
}

// refreshProfile re-reads the SIM profile into the modem cache. When files
// is non-empty only those EFs' fields are refreshed; a nil/empty list
// refreshes everything.
func (m *Modem) refreshProfile(files []sim.FileID) {
	p, err := m.card.ReadProfile()
	if err != nil {
		return
	}
	if len(files) == 0 {
		m.profile = p
		m.plmnListFresh = containsPLMN(p.PLMNs, ServingPLMN)
	} else {
		for _, f := range files {
			switch f {
			case sim.EFPLMNSel:
				m.profile.PLMNs = p.PLMNs
				m.plmnListFresh = containsPLMN(p.PLMNs, ServingPLMN)
			case sim.EFDNN:
				m.profile.DNN = p.DNN
			case sim.EFDNS:
				m.profile.DNS = p.DNS
			case sim.EFSNSSAI:
				m.profile.SST = p.SST
				m.profile.SD = p.SD
			case sim.EFRATMode:
				m.profile.RATMode = p.RATMode
			case sim.EFIMSI:
				m.profile.IMSI = p.IMSI
				m.imsi = p.IMSI
			}
		}
	}
	if m.hook.OnProfileReload != nil {
		m.hook.OnProfileReload()
	}
}
