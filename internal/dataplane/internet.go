// Package dataplane emulates everything above the PDU session: the
// internet beyond the UPF (app servers, the public DNS resolver, the
// Android captive-portal probe server) and the five application traffic
// patterns of §7.1.2 (video, live streaming, web, navigation, edge AR)
// with their buffer depths and request cadences. The emulators feed the
// Android monitor's detection rules and, when enabled, SEED's app
// failure-report API.
package dataplane

import (
	"time"

	"github.com/seed5g/seed/internal/core5g"
	"github.com/seed5g/seed/internal/nas"
	"github.com/seed5g/seed/internal/radio"
	"github.com/seed5g/seed/internal/sched"
)

// Well-known server addresses on the emulated internet.
var (
	// ProbeServerAddr hosts connectivitycheck.gstatic.com.
	ProbeServerAddr = nas.Addr{203, 0, 113, 1}
	// AppServerAddr hosts the generic application servers.
	AppServerAddr = nas.Addr{203, 0, 113, 10}
	// EdgeServerAddr hosts the edge AR recognition service.
	EdgeServerAddr = nas.Addr{203, 0, 113, 20}
)

// Internet emulates the network beyond the carrier: it answers app
// requests, public DNS queries, and captive-portal probes.
type Internet struct {
	k   *sched.Kernel
	upf *core5g.UPF

	// ServerLatency is the app-server response time.
	ServerLatency time.Duration
	// ProbeServerDown simulates a broken probe server (the Android
	// false-positive scenario of §3.3).
	ProbeServerDown bool
	// PublicDNSDown disables the public resolver.
	PublicDNSDown bool

	served int

	// injectFn and replyFree implement a closure-free reply path: each
	// response packet rides a pooled *radio.Packet through the kernel's
	// AtArg and returns to the pool once injected. Single-threaded per
	// kernel, so the pool needs no locks.
	injectFn  func(any)
	replyFree []*radio.Packet
}

// NewInternet creates the emulated internet and installs it as the UPF's
// remote handler.
func NewInternet(k *sched.Kernel, upf *core5g.UPF) *Internet {
	in := &Internet{k: k, upf: upf, ServerLatency: 20 * time.Millisecond}
	in.injectFn = func(v any) {
		p := v.(*radio.Packet)
		in.served++
		in.upf.Inject(*p)
		*p = radio.Packet{}
		in.replyFree = append(in.replyFree, p)
	}
	upf.SetRemote(in.handleUplink)
	return in
}

// Served returns the number of requests answered.
func (in *Internet) Served() int { return in.served }

// respond schedules the reply to pkt after the server latency.
func (in *Internet) respond(pkt *radio.Packet, length int, meta string) {
	var p *radio.Packet
	if n := len(in.replyFree); n > 0 {
		p = in.replyFree[n-1]
		in.replyFree = in.replyFree[:n-1]
	} else {
		p = new(radio.Packet)
	}
	*p = radio.Packet{
		Proto: pkt.Proto, Src: pkt.Dst, Dst: pkt.Src,
		SrcPort: pkt.DstPort, DstPort: pkt.SrcPort,
		Flow: pkt.Flow, Length: length, Meta: meta,
	}
	in.k.AfterArg(in.ServerLatency, in.injectFn, p)
}

func (in *Internet) handleUplink(pkt radio.Packet) {
	switch {
	case nas.Addr(pkt.Dst) == core5g.PublicDNSAddr && pkt.Proto == nas.ProtoUDP && pkt.DstPort == 53:
		if !in.PublicDNSDown {
			in.respond(&pkt, 128, "dns-answer:"+pkt.Meta)
		}
	case nas.Addr(pkt.Dst) == ProbeServerAddr:
		if !in.ProbeServerDown {
			in.respond(&pkt, 204, "probe-ok")
		}
	default:
		in.respond(&pkt, 1400, "app-response")
	}
}
