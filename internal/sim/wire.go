package sim

import (
	"errors"
	"fmt"
)

// Wire form of command APDUs (ISO 7816-4 case 3 with an extended-length
// escape, as carried on the modem↔SIM T=0 interface):
//
//	CLA(1) | INS(1) | P1(1) | P2(1)                       — case 1, no data
//	CLA(1) | INS(1) | P1(1) | P2(1) | Lc(1) | DATA(Lc)    — case 3, Lc 1..255
//	CLA | INS | P1 | P2 | 00 | LcHi | LcLo | DATA         — extended Lc
//
// The short-form length byte 0x00 escapes to the 2-byte extended length
// (TS 102 221 allows terminal profiles beyond 255 bytes). MaxAPDUData
// bounds the extended form so a lying length prefix cannot demand an
// unbounded allocation.

// MaxAPDUData bounds the data field of a wire-decoded command APDU.
const MaxAPDUData = 4096

// Wire codec errors. ErrAPDUTruncated covers every "header or data field
// shorter than its declared length" case; ErrAPDUTooLong rejects data
// fields beyond MaxAPDUData (encode and decode).
var (
	ErrAPDUTruncated = errors.New("sim: truncated APDU")
	ErrAPDUTooLong   = errors.New("sim: APDU data field too long")
	ErrAPDUTrailing  = errors.New("sim: trailing bytes after APDU data field")
)

// AppendBytes appends the command's wire encoding to dst and returns it,
// or an error when the data field exceeds MaxAPDUData.
func (c Command) AppendBytes(dst []byte) ([]byte, error) {
	n := len(c.Data)
	if n > MaxAPDUData {
		return dst, fmt.Errorf("%w: %d > %d", ErrAPDUTooLong, n, MaxAPDUData)
	}
	dst = append(dst, c.CLA, c.INS, c.P1, c.P2)
	switch {
	case n == 0:
		// case 1: no Lc at all
	case n <= 255:
		dst = append(dst, byte(n))
	default:
		dst = append(dst, 0x00, byte(n>>8), byte(n))
	}
	return append(dst, c.Data...), nil
}

// Bytes returns the command's wire encoding. It panics on a data field
// beyond MaxAPDUData (construct such commands only via the struct, not
// the wire).
func (c Command) Bytes() []byte {
	out, err := c.AppendBytes(nil)
	if err != nil {
		panic(err)
	}
	return out
}

// ParseCommand decodes a wire-form command APDU. The full input must be
// consumed: a data field shorter than Lc is ErrAPDUTruncated, bytes beyond
// it are ErrAPDUTrailing, and an extended length over MaxAPDUData is
// ErrAPDUTooLong — never a panic and never a silently clipped data field.
func ParseCommand(b []byte) (Command, error) {
	if len(b) < 4 {
		return Command{}, fmt.Errorf("%w: header needs 4 bytes, have %d", ErrAPDUTruncated, len(b))
	}
	cmd := Command{CLA: b[0], INS: b[1], P1: b[2], P2: b[3]}
	rest := b[4:]
	if len(rest) == 0 {
		return cmd, nil // case 1
	}
	var n int
	if rest[0] == 0x00 {
		if len(rest) < 3 {
			return Command{}, fmt.Errorf("%w: extended Lc needs 2 bytes", ErrAPDUTruncated)
		}
		n = int(rest[1])<<8 | int(rest[2])
		rest = rest[3:]
	} else {
		n = int(rest[0])
		rest = rest[1:]
	}
	if n > MaxAPDUData {
		return Command{}, fmt.Errorf("%w: Lc %d > %d", ErrAPDUTooLong, n, MaxAPDUData)
	}
	if len(rest) < n {
		return Command{}, fmt.Errorf("%w: Lc %d, data %d", ErrAPDUTruncated, n, len(rest))
	}
	if len(rest) > n {
		return Command{}, fmt.Errorf("%w: %d bytes", ErrAPDUTrailing, len(rest)-n)
	}
	if n > 0 {
		cmd.Data = append([]byte(nil), rest[:n]...)
	}
	return cmd, nil
}

// AppendResponseBytes appends the response's wire encoding — DATA | SW1 |
// SW2 — to dst.
func (r Response) AppendResponseBytes(dst []byte) []byte {
	dst = append(dst, r.Data...)
	return append(dst, byte(r.SW>>8), byte(r.SW))
}

// ParseResponse decodes a wire-form response APDU (trailing 2-byte status
// word, everything before it data).
func ParseResponse(b []byte) (Response, error) {
	if len(b) < 2 {
		return Response{}, fmt.Errorf("%w: response needs SW1 SW2", ErrAPDUTruncated)
	}
	r := Response{SW: uint16(b[len(b)-2])<<8 | uint16(b[len(b)-1])}
	if n := len(b) - 2; n > 0 {
		r.Data = append([]byte(nil), b[:n]...)
	}
	return r, nil
}
