package core5g

import (
	"time"

	"github.com/seed5g/seed/internal/cause"
)

// RejectRule forces the network to reject a UE's procedures with a given
// standardized (or customized, i.e. unregistered) cause. Rules are how the
// experiment harness reproduces the failure cases mined from the traces.
type RejectRule struct {
	// UE is the target IMSI; empty matches every UE.
	UE string
	// Plane selects control-plane (registration/service) or data-plane
	// (PDU session) procedures.
	Plane cause.Plane
	// Cause is the cause code to embed in the reject.
	Cause cause.Code
	// Remaining is the number of procedures still to reject; -1 means
	// until the rule is removed or expires.
	Remaining int
	// Until expires the rule at the given virtual time (0 = no expiry).
	Until time.Duration
	// Silent drops the procedure instead of rejecting (device timeout).
	Silent bool
}

// Injector holds the active failure rules for the network side.
type Injector struct {
	now   func() time.Duration
	rules []*RejectRule
}

// NewInjector creates an injector that reads virtual time from now.
func NewInjector(now func() time.Duration) *Injector {
	return &Injector{now: now}
}

// Add installs a rule and returns it for later removal.
func (in *Injector) Add(r *RejectRule) *RejectRule {
	in.rules = append(in.rules, r)
	return r
}

// Remove deletes a rule.
func (in *Injector) Remove(r *RejectRule) {
	for i, x := range in.rules {
		if x == r {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			return
		}
	}
}

// Clear removes all rules for a UE (empty = all rules).
func (in *Injector) Clear(ue string) {
	kept := in.rules[:0]
	for _, r := range in.rules {
		if ue != "" && r.UE != ue {
			kept = append(kept, r)
		}
	}
	in.rules = kept
}

// Match consumes and returns the first applicable rule for a procedure,
// or nil. Expired and exhausted rules are pruned as encountered.
func (in *Injector) Match(ue string, plane cause.Plane) *RejectRule {
	now := in.now()
	for i := 0; i < len(in.rules); i++ {
		r := in.rules[i]
		if r.Until != 0 && now > r.Until {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			i--
			continue
		}
		if r.Plane != plane || (r.UE != "" && r.UE != ue) {
			continue
		}
		if r.Remaining == 0 {
			in.rules = append(in.rules[:i], in.rules[i+1:]...)
			i--
			continue
		}
		if r.Remaining > 0 {
			r.Remaining--
		}
		return r
	}
	return nil
}

// Active returns the number of live rules.
func (in *Injector) Active() int { return len(in.rules) }
