package seed_test

// Chaos hardening: random storms of every failure kind against a SEED
// device. Whatever the sequence, the invariants hold: no panics, and once
// injections stop the device always recovers.

import (
	"math/rand"
	"testing"
	"time"

	seed "github.com/seed5g/seed"
)

func TestChaosStormAlwaysRecovers(t *testing.T) {
	for trial := int64(0); trial < 6; trial++ {
		trial := trial
		t.Run("", func(t *testing.T) {
			rng := rand.New(rand.NewSource(trial))
			tb := seed.New(trial + 100)
			d := tb.NewDevice(seed.ModeSEEDR)
			web := d.AddApp(seed.AppWeb)
			d.Start()
			if !tb.RunUntil(d.Connected, time.Minute) {
				t.Fatal("initial attach failed")
			}
			web.Start()
			tb.Advance(30 * time.Second)

			// Storm: 12 random injections with random gaps.
			for i := 0; i < 12; i++ {
				switch rng.Intn(8) {
				case 0:
					tb.DesyncIdentity(d)
					tb.SimulateMobility(d)
				case 1:
					tb.InjectControlFailure(d, 22, seed.InjectOpts{
						Count: 1 + rng.Intn(3), HealAfter: time.Duration(1+rng.Intn(20)) * time.Second,
					})
					tb.SimulateMobility(d)
				case 2:
					tb.InjectDataFailure(d, 27, seed.InjectOpts{
						Count: 1 + rng.Intn(3), HealAfter: time.Duration(1+rng.Intn(20)) * time.Second,
					})
					tb.ReleaseSessions(d)
				case 3:
					tb.BlockTCP(d)
				case 4:
					tb.BlockUDP(d)
				case 5:
					tb.SetDNSOutage(true)
				case 6:
					tb.StallGateway(d)
				case 7:
					d.Reboot()
				}
				tb.Advance(time.Duration(1+rng.Intn(45)) * time.Second)
			}

			// Stop injecting; clear the standing network-side conditions
			// SEED cannot remove on its own behalf (operator heals).
			tb.ClearInjections(d)
			tb.SetDNSOutage(false)

			if !tb.RunUntil(d.Connected, 30*time.Minute) {
				t.Fatalf("trial %d: device wedged (state=%s)", trial, d.State())
			}
			// Traffic must flow again end to end.
			mark := tb.Now()
			ok := tb.RunUntil(func() bool { return web.LastSuccess() > mark }, 10*time.Minute)
			if !ok {
				t.Fatalf("trial %d: connected but traffic dead", trial)
			}
		})
	}
}

func TestCollaborationSurvivesRadioJitter(t *testing.T) {
	tb := seed.New(9)
	d := tb.NewDevice(seed.ModeSEEDR)
	tb.SetRadioJitter(d, 30*time.Millisecond)
	d.Start()
	if !tb.RunUntil(d.Connected, time.Minute) {
		t.Fatal("attach failed under jitter")
	}
	// The multi-fragment diagnosis channel must still work: inject a
	// config failure whose fix rides several AUTN fragments.
	tb.MigrateSubscription(d, "a-rather-long-data-network-name-for-fragmentation", true)
	tb.EstablishIMS(d)
	tb.Advance(2 * time.Second)
	tb.ReleaseInternetSessions(d)
	if !tb.RunUntil(func() bool { return !d.Connected() }, time.Minute) {
		t.Fatal("failure never manifested")
	}
	if !tb.RunUntil(d.Connected, 5*time.Minute) {
		t.Fatal("no recovery under jitter")
	}
	if d.DiagnosesReceived() == 0 {
		t.Fatal("diagnosis never arrived under jitter")
	}
}
